//! The lint catalogue: the six invariant checks and their metadata.
//!
//! Every lint has a stable ID (`L001` …) that diagnostics, fixtures,
//! allow markers and the README catalogue all reference. IDs are never
//! reused; retiring a lint retires its number.

use crate::engine::{Diagnostic, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::policy;

/// Catalogue metadata for one lint (drives `varbench lint --list` and
/// the README table).
pub struct LintInfo {
    /// Stable diagnostic ID.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line statement of the invariant the lint guards.
    pub summary: &'static str,
}

/// The full catalogue, in ID order.
pub const CATALOGUE: &[LintInfo] = &[
    LintInfo {
        id: "L001",
        name: "map-iter-order",
        summary: "no HashMap/HashSet in library code: iteration order would leak \
                  nondeterminism into results (use BTreeMap/BTreeSet or sort)",
    },
    LintInfo {
        id: "L002",
        name: "no-wallclock",
        summary: "Instant/SystemTime only in the registered timing module: \
                  measurements must be pure functions of seeds, never of the clock",
    },
    LintInfo {
        id: "L003",
        name: "unsafe-hygiene",
        summary: "every unsafe needs an adjacent `// SAFETY:` comment and every \
                  crate root must carry #![forbid(unsafe_code)] or be allowlisted",
    },
    LintInfo {
        id: "L004",
        name: "cache-key-firewall",
        summary: "cache-key variants only via registered MeasureKey::with_variant \
                  sites; no ad-hoc key formatting outside cache.rs",
    },
    LintInfo {
        id: "L005",
        name: "no-alloc-region",
        summary: "fn bodies marked `lint: no-alloc` (epoch loop, GEMM kernels) \
                  must not allocate (Vec::new/vec!/push/clone/collect/format!/...)",
    },
    LintInfo {
        id: "L006",
        name: "no-fma-contraction",
        summary: "mul_add only in golden-tested kernel files: a fused \
                  multiply-add changes bits vs the committed artifacts",
    },
];

/// Runs every lint over one parsed file.
pub fn check(file: &SourceFile<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    map_iter_order(file, &mut out);
    no_wallclock(file, &mut out);
    unsafe_hygiene(file, &mut out);
    cache_key_firewall(file, &mut out);
    no_alloc_region(file, &mut out);
    no_fma_contraction(file, &mut out);
    out
}

fn diag(file: &SourceFile<'_>, t: &Token, lint: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: file.rel_path.to_string(),
        line: t.line,
        lint,
        message,
    }
}

/// Idents in non-test library code, with their token index.
fn lib_idents<'f>(file: &'f SourceFile<'_>) -> impl Iterator<Item = (usize, &'f Token)> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind == TokenKind::Ident && !file.in_test_code(t.start))
}

/// L001: hash-map types are banned from library code — their iteration
/// order varies run to run, which is exactly the silent nondeterminism
/// the bit-identity rules exist to prevent. Even membership-only uses
/// are flagged (and may be allow-marked): the next edit that iterates
/// one would not be caught by any test that passes today.
fn map_iter_order(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !policy::is_lib_source(file.rel_path) {
        return;
    }
    for (_, t) in lib_idents(file) {
        let name = t.text(file.src);
        if name == "HashMap" || name == "HashSet" {
            out.push(diag(
                file,
                t,
                "L001",
                format!(
                    "{name} in library code: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or an explicitly sorted Vec"
                ),
            ));
        }
    }
}

/// L002: wall-clock reads are banned outside the timing harness — a
/// measurement that observes the clock is not a pure function of its
/// seeds, and cached replays would diverge from fresh runs.
fn no_wallclock(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !policy::is_lib_source(file.rel_path) || policy::WALLCLOCK_FILES.contains(&file.rel_path) {
        return;
    }
    for (_, t) in lib_idents(file) {
        let name = t.text(file.src);
        if name == "Instant" || name == "SystemTime" {
            out.push(diag(
                file,
                t,
                "L002",
                format!(
                    "{name} outside the timing module: results must be pure \
                     functions of seeds (timing belongs in {})",
                    policy::WALLCLOCK_FILES.join(", ")
                ),
            ));
        }
    }
}

/// L003: `unsafe` hygiene. Applies to *all* code, tests included — an
/// unexplained unsafe block is a review hazard wherever it lives.
fn unsafe_hygiene(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    // (a) every `unsafe` token needs a `SAFETY:` comment on its line or
    // within the three lines above it.
    for t in &file.tokens {
        if t.kind != TokenKind::Ident || t.text(file.src) != "unsafe" {
            continue;
        }
        let covered = file.tokens.iter().any(|c| {
            matches!(c.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && c.line + 3 >= t.line
                && c.line <= t.line
                && c.text(file.src).contains("SAFETY:")
        });
        if !covered {
            out.push(diag(
                file,
                t,
                "L003",
                "unsafe without an adjacent `// SAFETY:` comment explaining why \
                 the invariants hold"
                    .to_string(),
            ));
        }
    }
    // (b) crate roots must forbid unsafe code (or be allowlisted).
    if policy::is_crate_root(file.rel_path)
        && !policy::UNSAFE_ROOT_ALLOWLIST
            .iter()
            .any(|(p, _)| *p == file.rel_path)
        && !has_forbid_unsafe(file)
    {
        out.push(Diagnostic {
            path: file.rel_path.to_string(),
            line: 1,
            lint: "L003",
            message: "crate root missing #![forbid(unsafe_code)] (add it, or register \
                      the root in policy::UNSAFE_ROOT_ALLOWLIST with a justification)"
                .to_string(),
        });
    }
}

/// Whether the token stream contains `forbid ( unsafe_code )`.
fn has_forbid_unsafe(file: &SourceFile<'_>) -> bool {
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    code.windows(4).any(|w| {
        w[0].text(file.src) == "forbid"
            && w[1].text(file.src) == "("
            && w[2].text(file.src) == "unsafe_code"
            && w[3].text(file.src) == ")"
    })
}

/// L004: the cache-key firewall. Variant tags decide whether two
/// measurements may share a cached record; minting them anywhere except
/// the registered table (and formatting key segments anywhere except
/// `canonical()`) would let records alias across statistical modes.
fn cache_key_firewall(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !policy::is_lib_source(file.rel_path) {
        return;
    }
    if !policy::VARIANT_CALL_SITES.contains(&file.rel_path) {
        for (_, t) in lib_idents(file) {
            if t.text(file.src) == "with_variant" {
                out.push(diag(
                    file,
                    t,
                    "L004",
                    "MeasureKey::with_variant outside the registered call-site table \
                     (policy::VARIANT_CALL_SITES): variant tags must be reviewable \
                     in one place"
                        .to_string(),
                ));
            }
        }
    }
    if file.rel_path != policy::KEY_FORMAT_HOME {
        for t in &file.tokens {
            if !matches!(t.kind, TokenKind::Str | TokenKind::RawStr) || file.in_test_code(t.start) {
                continue;
            }
            let text = t.text(file.src);
            if let Some(m) = policy::KEY_FORMAT_MARKERS
                .iter()
                .find(|m| text.contains(**m))
            {
                out.push(diag(
                    file,
                    t,
                    "L004",
                    format!(
                        "ad-hoc cache-key formatting (literal contains \"{m}\"): key \
                         segments are rendered only by canonical() in {}",
                        policy::KEY_FORMAT_HOME
                    ),
                ));
            }
        }
    }
}

/// Allocation-introducing names banned inside `lint: no-alloc` regions.
const ALLOC_CALLS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "push",
    "extend",
    "reserve",
];

/// L005: marked hot regions must stay allocation-free. The epoch loop
/// and the GEMM kernels earned their zero-alloc status benchmark by
/// benchmark; an accidental `clone()` in one would be invisible to the
/// correctness tests and only show up as a perf-gate regression later.
fn no_alloc_region(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    let regions = file.no_alloc_regions();
    if regions.is_empty() {
        return;
    }
    let in_region = |off: usize| regions.iter().any(|r| r.contains(&off));
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !in_region(t.start) {
            continue;
        }
        let name = t.text(file.src);
        let next = |k: usize| {
            file.tokens[i + 1..]
                .iter()
                .filter(|n| !matches!(n.kind, TokenKind::LineComment | TokenKind::BlockComment))
                .nth(k)
                .map(|n| n.text(file.src))
        };
        let hit = ALLOC_CALLS.contains(&name)
            || ((name == "vec" || name == "format") && next(0) == Some("!"))
            || ((name == "Vec" || name == "Box" || name == "String")
                && next(0) == Some(":")
                && next(1) == Some(":")
                && next(2) == Some("new"));
        if hit {
            out.push(diag(
                file,
                t,
                "L005",
                format!("`{name}` allocates inside a `lint: no-alloc` region"),
            ));
        }
    }
}

/// L006: `mul_add` contracts a multiply and an add into one fused
/// operation with a single rounding — different bits than the two-step
/// form the committed artifacts were produced with. Confined to kernel
/// files whose exact accumulation order is pinned by golden tests.
fn no_fma_contraction(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !policy::is_lib_source(file.rel_path) || policy::FMA_KERNEL_FILES.contains(&file.rel_path) {
        return;
    }
    for (_, t) in lib_idents(file) {
        if t.text(file.src) == "mul_add" {
            out.push(diag(
                file,
                t,
                "L006",
                format!(
                    "mul_add outside the golden-tested kernel files ({}): FMA \
                     contraction changes result bits",
                    policy::FMA_KERNEL_FILES.join(", ")
                ),
            ));
        }
    }
}
