//! Repo policy: which paths each lint applies to, and the explicit
//! allowlists. This is the one file to edit when registering a new
//! timing module, kernel file or cache-key call site.
//!
//! Paths are repo-relative and `/`-separated (e.g.
//! `crates/pipeline/src/cache.rs`).

/// Files allowed to read wall-clock time (L002): the timing harness is
/// the *product* that measures time; everything else must be
/// deterministic in its inputs.
pub const WALLCLOCK_FILES: &[&str] = &["crates/bench/src/timing.rs"];

/// Crate roots exempt from the `#![forbid(unsafe_code)]` requirement
/// (L003), each entry carrying its justification. Currently empty: every
/// crate root in the workspace forbids unsafe code.
pub const UNSAFE_ROOT_ALLOWLIST: &[(&str, &str)] = &[];

/// The registered `MeasureKey::with_variant` call sites (L004). Variant
/// tags quarantine non-default statistical modes in their own cache-key
/// space; every site minting one must be listed here so a review of the
/// cache-key firewall reads one table instead of grepping the tree.
pub const VARIANT_CALL_SITES: &[&str] = &[
    // The constructor itself plus the canonical-form renderer.
    "crates/pipeline/src/cache.rs",
    // RunContext::measure_key — stamps the bootstrap-mode variant.
    "crates/core/src/ctx.rs",
];

/// The only file allowed to format cache-key segments (L004): the
/// canonical serialized form lives in `canonical()` and nowhere else.
pub const KEY_FORMAT_HOME: &str = "crates/pipeline/src/cache.rs";

/// Cache-key segment markers whose appearance in a string literal
/// outside [`KEY_FORMAT_HOME`] means someone is formatting keys ad hoc.
// lint:allow(L004): the firewall's own pattern table quotes the markers
pub const KEY_FORMAT_MARKERS: &[&str] = &["|var=", "|seed=", "|fp=", "varbench-cache"];

/// Golden-tested kernel files where `mul_add` is permitted (L006).
/// Everywhere else a fused multiply-add would change results vs the
/// separate multiply-and-add the artifacts were committed under.
pub const FMA_KERNEL_FILES: &[&str] =
    &["crates/linalg/src/ops.rs", "crates/linalg/src/cholesky.rs"];

/// Whether `path` is library source (the scope of L001/L002/L004/L006):
/// anything under a `src/` directory. Test targets, benches and examples
/// live outside `src/` by Cargo convention.
pub fn is_lib_source(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/")) && !is_test_path(path)
}

/// Whether `path` is test code wholesale: integration tests, benches,
/// and examples (compiled but never producing committed artifacts).
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Whether `path` is a crate root (lib, main, or a `src/bin` target) —
/// the files L003 requires to carry `#![forbid(unsafe_code)]`.
pub fn is_crate_root(path: &str) -> bool {
    if is_test_path(path) {
        return false;
    }
    path == "src/lib.rs"
        || path == "src/main.rs"
        || path.ends_with("/src/lib.rs")
        || path.ends_with("/src/main.rs")
        || path.contains("/src/bin/")
        || path.starts_with("src/bin/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert!(is_lib_source("src/lib.rs"));
        assert!(is_lib_source("crates/pipeline/src/cache.rs"));
        assert!(is_lib_source("crates/bench/src/bin/varbench.rs"));
        assert!(!is_lib_source("tests/determinism.rs"));
        assert!(!is_lib_source("crates/linalg/tests/property.rs"));
        assert!(!is_lib_source("crates/bench/benches/gemm.rs"));
        assert!(!is_lib_source("examples/quickstart.rs"));
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/rng/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/varbench.rs"));
        assert!(!is_crate_root("crates/rng/src/rng.rs"));
        assert!(!is_crate_root("crates/lint/tests/fixtures/src/lib.rs"));
    }
}
