//! # varbench-lint — the workspace's tidy-style invariant checker
//!
//! The bit-identity guarantees this repo ships — seed-ordered results at
//! any thread count, the cache-key variant firewall, the zero-alloc
//! epoch loop — were conventions enforced by review. This crate makes
//! them machine-checked, the way `rust-lang/rust`'s `tidy` pass guards
//! that repo's conventions: a hand-rolled Rust lexer ([`lexer`]), a
//! small engine deriving scopes and suppression markers ([`engine`]),
//! a repo policy of allowlists ([`policy`]) and a catalogue of lints
//! with stable IDs ([`rules`]). The `varbench lint [--json] [PATHS…]`
//! CLI subcommand and `scripts/ci.sh` gate on it.
//!
//! | ID | name | invariant |
//! |---|---|---|
//! | L001 | map-iter-order | no `HashMap`/`HashSet` in library code |
//! | L002 | no-wallclock | `Instant`/`SystemTime` only in the timing module |
//! | L003 | unsafe-hygiene | `SAFETY:` comments + `#![forbid(unsafe_code)]` roots |
//! | L004 | cache-key-firewall | variant tags only via registered sites |
//! | L005 | no-alloc-region | marked hot fns never allocate |
//! | L006 | no-fma-contraction | `mul_add` only in golden-tested kernels |
//!
//! Suppress a finding inline with a reasoned marker, on the offending
//! line or standing alone on the line above it:
//!
//! ```text
//! // lint:allow(L001): membership-only set, never iterated
//! ```
//!
//! The reason is mandatory; a bare marker suppresses nothing. Functions
//! whose body must stay allocation-free are marked with a `lint:
//! no-alloc` comment immediately above the `fn` (see L005).
//!
//! The crate is std-only with zero dependencies — it must keep building
//! when the code it polices does not.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod policy;
pub mod rules;

pub use engine::{check_file, check_paths, find_workspace_root, render_json, Diagnostic};
pub use rules::{LintInfo, CATALOGUE};
