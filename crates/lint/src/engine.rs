//! The lint engine: file model, scope regions, suppression markers and
//! the driver that runs the catalogue over files and trees.
//!
//! A [`SourceFile`] is one lexed `.rs` file plus the derived facts every
//! lint needs:
//!
//! * **test regions** — byte ranges covered by `#[cfg(test)] mod … { }`
//!   blocks (files under `tests/`, `benches/` or `examples/` are test
//!   code wholesale, decided by path in [`crate::policy`]);
//! * **allow markers** — `// lint:allow(L001): reason` comments. A
//!   marker suppresses matching diagnostics on its own line, and, when
//!   it stands alone on its line, on the following line too. The reason
//!   is mandatory: a marker without one is ignored (suppressing nothing)
//!   so a bare `lint:allow(L001)` can never silently waive a finding;
//! * **no-alloc regions** — the body of the first `fn` following a
//!   `// lint: no-alloc` marker comment (used by L005).

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::{policy, rules};

/// One finding: a stable lint ID anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path (`/`-separated) of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Stable lint ID (`"L001"` … `"L006"`).
    pub lint: &'static str,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// A parsed `lint:allow(<id>): <reason>` marker.
#[derive(Debug, Clone)]
struct Allow {
    id: String,
    line: u32,
    /// Marker is the only content on its line (applies to the next line).
    standalone: bool,
}

/// One lexed source file plus the derived scope/suppression facts.
pub struct SourceFile<'a> {
    /// Repo-relative `/`-separated path used for policy decisions.
    pub rel_path: &'a str,
    /// The raw source text.
    pub src: &'a str,
    /// The token stream (whitespace-free).
    pub tokens: Vec<Token>,
    /// Byte ranges inside `#[cfg(test)] mod … { }` blocks.
    test_regions: Vec<Range<usize>>,
    /// Byte ranges of `fn` bodies marked `// lint: no-alloc`.
    no_alloc_regions: Vec<Range<usize>>,
    allows: Vec<Allow>,
}

impl<'a> SourceFile<'a> {
    /// Lexes `src` and derives regions and markers.
    pub fn parse(rel_path: &'a str, src: &'a str) -> SourceFile<'a> {
        let tokens = lex(src);
        let test_regions = find_cfg_test_regions(src, &tokens);
        let (allows, no_alloc_regions) = scan_markers(src, &tokens);
        SourceFile {
            rel_path,
            src,
            tokens,
            test_regions,
            no_alloc_regions,
            allows,
        }
    }

    /// Whether the byte at `offset` is inside test code: a test-path
    /// file, or a `#[cfg(test)]` mod block.
    pub fn in_test_code(&self, offset: usize) -> bool {
        policy::is_test_path(self.rel_path) || self.test_regions.iter().any(|r| r.contains(&offset))
    }

    /// The `// lint: no-alloc` fn-body regions of this file.
    pub fn no_alloc_regions(&self) -> &[Range<usize>] {
        &self.no_alloc_regions
    }

    /// Whether a diagnostic `(lint, line)` is waived by an allow marker.
    fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.id == lint && (a.line == line || (a.standalone && a.line + 1 == line)))
    }
}

/// Runs the full catalogue over one file, returning unsuppressed
/// findings sorted by line.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, src);
    let mut out: Vec<Diagnostic> = rules::check(&file)
        .into_iter()
        .filter(|d| !file.allowed(d.lint, d.line))
        .collect();
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    // Two offending tokens on one line (`HashMap<…> { HashMap::new() }`)
    // are one finding, not two.
    out.dedup_by(|a, b| a.line == b.line && a.lint == b.lint && a.message == b.message);
    out
}

/// Scans comment tokens for suppression and region markers.
///
/// A marker is a comment whose body (after stripping `//`, `///`, `//!`
/// or `/*`/`*/` delimiters and whitespace) *starts with* `lint:` —
/// prose that merely mentions the syntax never matches.
fn scan_markers(src: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Range<usize>>) {
    let mut allows = Vec::new();
    let mut regions = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let body = match t.kind {
            TokenKind::LineComment => comment_body(t.text(src)),
            TokenKind::BlockComment => comment_body(t.text(src)),
            _ => continue,
        };
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        if rest == "no-alloc" {
            if let Some(region) = fn_body_after(src, tokens, i) {
                regions.push(region);
            }
        } else if let Some(args) = rest.strip_prefix("allow(") {
            let Some((id, reason)) = args.split_once(')') else {
                continue;
            };
            // The reason is mandatory: `): <nonempty>` or the marker is
            // inert.
            let reason_ok = reason
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            if !reason_ok {
                continue;
            }
            let standalone = src[..t.start]
                .rsplit('\n')
                .next()
                .is_some_and(|prefix| prefix.trim().is_empty());
            allows.push(Allow {
                id: id.trim().to_string(),
                line: t.line,
                standalone,
            });
        }
    }
    (allows, regions)
}

/// Strips comment delimiters and surrounding whitespace from a comment
/// token's text.
fn comment_body(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.trim_start_matches(['/', '!'])
    } else {
        text.trim_start_matches("/*")
            .trim_end_matches("*/")
            .trim_start_matches(['*', '!'])
    };
    body.trim()
}

/// The byte range of the body of the first `fn` at or after token `from`.
fn fn_body_after(src: &str, tokens: &[Token], from: usize) -> Option<Range<usize>> {
    let fn_idx = tokens[from..]
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text(src) == "fn")?
        + from;
    let open = tokens[fn_idx..]
        .iter()
        .position(|t| t.kind == TokenKind::Punct && t.text(src) == "{")?
        + fn_idx;
    let close = matching_brace(src, tokens, open)?;
    Some(tokens[open].start..tokens[close].end)
}

/// Index of the `}` token matching the `{` at token index `open`.
/// Counts only Punct braces, so braces inside strings and comments never
/// confuse the depth.
fn matching_brace(src: &str, tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds every `#[cfg(test)] mod … { }` block's byte range.
///
/// Pattern-matched on the token stream: `#` `[` `cfg` `(` `test` `)`
/// `]`, then any further attributes, then an optional visibility, then
/// `mod <name> {`. Inline `#[cfg(test)]` on items other than mods is not
/// treated as a region (the repo convention keeps unit tests in mods).
fn find_cfg_test_regions(src: &str, tokens: &[Token]) -> Vec<Range<usize>> {
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let text = |ci: usize| tokens[code[ci]].text(src);
    let mut regions = Vec::new();
    let mut ci = 0usize;
    while ci + 6 < code.len() {
        let is_cfg_test = text(ci) == "#"
            && text(ci + 1) == "["
            && text(ci + 2) == "cfg"
            && text(ci + 3) == "("
            && text(ci + 4) == "test"
            && text(ci + 5) == ")"
            && text(ci + 6) == "]";
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        // Skip any further attributes (`#[…]`, bracket-balanced).
        let mut cj = ci + 7;
        while cj + 1 < code.len() && text(cj) == "#" && text(cj + 1) == "[" {
            let mut depth = 0usize;
            let mut ck = cj + 1;
            while ck < code.len() {
                match text(ck) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                ck += 1;
            }
            cj = ck + 1;
        }
        // Optional visibility (`pub`, `pub(crate)`, …) then `mod name {`.
        if cj < code.len() && text(cj) == "pub" {
            cj += 1;
            if cj < code.len() && text(cj) == "(" {
                while cj < code.len() && text(cj) != ")" {
                    cj += 1;
                }
                cj += 1;
            }
        }
        if cj + 2 < code.len() && text(cj) == "mod" && text(cj + 2) == "{" {
            if let Some(close) = matching_brace(src, tokens, code[cj + 2]) {
                regions.push(tokens[code[cj + 2]].start..tokens[close].end);
                ci = cj + 3;
                continue;
            }
        }
        ci += 1;
    }
    regions
}

// ---------------------------------------------------------------------
// Tree driver
// ---------------------------------------------------------------------

/// Finds the workspace root by walking up from `start` looking for a
/// `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Checks the given paths (files or directories), or the whole tree
/// under `root` when `paths` is empty. Diagnostics come back sorted by
/// `(path, line, lint)`.
///
/// Directory walks skip `target`, dot-directories and `fixtures`
/// directories (lint-test fixture files contain deliberate violations).
pub fn check_paths(root: &Path, paths: &[PathBuf]) -> Result<Vec<Diagnostic>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if paths.is_empty() {
        collect_rs_files(root, &mut files)?;
    } else {
        for p in paths {
            if p.is_dir() {
                collect_rs_files(p, &mut files)?;
            } else if p.is_file() {
                files.push(p.clone());
            } else {
                return Err(format!("no such file or directory: {}", p.display()));
            }
        }
    }
    let mut out = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        out.extend(check_file(&rel, &src));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders diagnostics as the `varbench-lint/1` JSON document.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"path\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
                json_string(&d.path),
                d.line,
                json_string(d.lint),
                json_string(&d.message)
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"varbench-lint/1\",\"diagnostics\":[{}]}}\n",
        items.join(",")
    )
}

/// Minimal JSON string escaping (the crate is dependency-free).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let b_off = src.find("fn b").unwrap();
        assert!(f.in_test_code(b_off));
        assert!(!f.in_test_code(0));
    }

    #[test]
    fn attributes_between_cfg_and_mod_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_test_code(src.find("fn x").unwrap()));
    }

    #[test]
    fn allow_marker_requires_reason() {
        let src = "// lint:allow(L001)\nuse x;\n// lint:allow(L001): membership only\nuse y;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.allowed("L001", 2), "reasonless marker must be inert");
        assert!(f.allowed("L001", 4), "standalone marker covers next line");
        assert!(f.allowed("L001", 3), "marker covers its own line");
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_marker() {
        let src = "/// Suppress with `lint:allow(L001): why` markers.\nfn f() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.allowed("L001", 2));
    }

    #[test]
    fn no_alloc_region_spans_the_next_fn_body() {
        let src = "// lint: no-alloc\nfn hot(x: &mut [f64]) {\n    step(x);\n}\nfn cold() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let regions = f.no_alloc_regions();
        assert_eq!(regions.len(), 1);
        assert!(regions[0].contains(&src.find("step").unwrap()));
        assert!(!regions[0].contains(&src.find("fn cold").unwrap()));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic {
            path: "a\"b".into(),
            line: 1,
            lint: "L001",
            message: "x\ny".into(),
        };
        let doc = render_json(&[d]);
        assert!(doc.contains("a\\\"b"));
        assert!(doc.contains("x\\ny"));
    }
}
