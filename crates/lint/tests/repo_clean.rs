//! The self-check the CI gate relies on: the committed tree must be
//! lint-clean, including this crate itself. Any new violation anywhere
//! in the workspace fails this test with the exact diagnostics the
//! `varbench lint` CLI would print.

use std::path::Path;

#[test]
fn committed_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let diags = varbench_lint::check_paths(&root, &[]).expect("lint walk succeeds");
    assert!(
        diags.is_empty(),
        "the committed tree must be lint-clean; found:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_crate_is_clean_on_its_own() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let diags =
        varbench_lint::check_paths(&root, &[root.join("crates/lint")]).expect("lint walk succeeds");
    assert!(
        diags.is_empty(),
        "varbench-lint must pass its own catalogue; found:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
