//! Expected-diagnostic tests: every lint in the catalogue has at least
//! one firing fixture and one exercised allow-marker path.
//!
//! Fixture files live under `tests/fixtures/` (a directory the repo
//! walker skips — they contain deliberate violations) and are checked
//! under *pretend* repo-relative paths, because most lints scope by
//! path: a fixture pretending to be `crates/fake/src/lib.rs` is library
//! code and a crate root; the same bytes under `tests/…` would be
//! exempt.

use std::path::Path;

/// Runs the catalogue over a fixture file with a pretend repo path and
/// returns `(line, lint_id)` pairs.
fn check_fixture(fixture: &str, pretend_path: &str) -> Vec<(u32, &'static str)> {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", disk.display()));
    varbench_lint::check_file(pretend_path, &src)
        .into_iter()
        .map(|d| (d.line, d.lint))
        .collect()
}

#[test]
fn l001_fires_and_allows() {
    let diags = check_fixture("l001_map_iter.rs", "crates/fake/src/maps.rs");
    assert_eq!(diags, vec![(2, "L001"), (3, "L001")]);
}

#[test]
fn l001_is_scoped_to_library_code() {
    // The same bytes under a tests/ path produce nothing.
    let diags = check_fixture("l001_map_iter.rs", "crates/fake/tests/maps.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn l002_fires_and_allows() {
    let diags = check_fixture("l002_wallclock.rs", "crates/fake/src/clock.rs");
    assert_eq!(diags, vec![(2, "L002"), (5, "L002"), (6, "L002")]);
}

#[test]
fn l002_registered_timing_module_is_exempt() {
    let diags = check_fixture("l002_wallclock.rs", "crates/bench/src/timing.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn l003_fires_and_allows() {
    let diags = check_fixture("l003_unsafe.rs", "crates/fake/src/lib.rs");
    assert_eq!(diags, vec![(1, "L003"), (7, "L003")]);
}

#[test]
fn l003_forbidding_root_is_clean() {
    let diags = check_fixture("l003_clean_root.rs", "crates/fake/src/lib.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn l003_non_root_files_skip_the_forbid_check() {
    // Same clean file as a non-root module: still clean, and no forbid
    // requirement applies.
    let diags = check_fixture("l003_clean_root.rs", "crates/fake/src/inner.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn l004_fires_and_allows() {
    let diags = check_fixture("l004_cache_key.rs", "crates/fake/src/keys.rs");
    assert_eq!(diags, vec![(4, "L004"), (8, "L004")]);
}

#[test]
fn l004_registered_sites_are_exempt() {
    let diags = check_fixture("l004_cache_key.rs", "crates/core/src/ctx.rs");
    // ctx.rs is a registered with_variant site but NOT the key-format
    // home, so the ad-hoc format string still fires.
    assert_eq!(diags, vec![(8, "L004")]);
    let diags = check_fixture("l004_cache_key.rs", "crates/pipeline/src/cache.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn l005_fires_and_allows() {
    let diags = check_fixture("l005_no_alloc.rs", "crates/fake/src/kernels.rs");
    assert_eq!(
        diags,
        vec![(5, "L005"), (6, "L005"), (7, "L005"), (8, "L005")]
    );
}

#[test]
fn l006_fires_and_allows() {
    let diags = check_fixture("l006_mul_add.rs", "crates/fake/src/math.rs");
    assert_eq!(diags, vec![(4, "L006")]);
}

#[test]
fn l006_kernel_files_are_exempt() {
    let diags = check_fixture("l006_mul_add.rs", "crates/linalg/src/ops.rs");
    assert_eq!(diags, vec![]);
}

#[test]
fn catalogue_ids_are_stable_and_sorted() {
    let ids: Vec<&str> = varbench_lint::CATALOGUE.iter().map(|l| l.id).collect();
    assert_eq!(ids, vec!["L001", "L002", "L003", "L004", "L005", "L006"]);
}

#[test]
fn json_rendering_round_trips_the_finding() {
    let diags = varbench_lint::check_file(
        "crates/fake/src/maps.rs",
        "use std::collections::HashMap;\n",
    );
    assert_eq!(diags.len(), 1);
    let doc = varbench_lint::render_json(&diags);
    assert!(doc.starts_with("{\"schema\":\"varbench-lint/1\""));
    assert!(doc.contains("\"lint\":\"L001\""));
    assert!(doc.contains("\"line\":1"));
    assert!(doc.contains("crates/fake/src/maps.rs"));
}
