//! Golden tests pinning the lexer's guaranteed behaviour on adversarial
//! token sequences. Every case that could flip a lint from token
//! matching to text matching lives here: nested block comments, raw
//! strings with `#` fences, char/lifetime ambiguity, comment-looking
//! content inside strings, string-looking content inside comments.

use varbench_lint::lexer::lex;

/// Compact golden form: one `kind:text` entry per token.
fn dump(src: &str) -> Vec<String> {
    lex(src)
        .iter()
        .map(|t| format!("{:?}:{}", t.kind, t.text(src)))
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    assert_eq!(
        dump("a /* x /* deeper /* deepest */ */ still comment */ b"),
        vec![
            "Ident:a",
            "BlockComment:/* x /* deeper /* deepest */ */ still comment */",
            "Ident:b",
        ]
    );
}

#[test]
fn raw_strings_with_fences_swallow_terminators() {
    // `"#` inside a `##` fence terminates nothing; neither do `//`, `*/`
    // or an unmatched `"`.
    let src = r####"r##"contains "# and // and */ and " quote"## after"####;
    assert_eq!(
        dump(src),
        vec![
            format!(
                "RawStr:{}",
                r####"r##"contains "# and // and */ and " quote"##"####
            ),
            "Ident:after".to_string(),
        ]
    );
}

#[test]
fn raw_ident_vs_raw_string_disambiguates_on_the_fence_byte() {
    assert_eq!(
        dump("r#match r#\"str\"# r\"plain\" br\"bytes\" b\"b\" b'q'"),
        vec![
            "RawIdent:r#match",
            "RawStr:r#\"str\"#",
            "RawStr:r\"plain\"",
            "RawStr:br\"bytes\"",
            "Str:b\"b\"",
            "Char:b'q'",
        ]
    );
}

#[test]
fn char_lifetime_and_label_ambiguity() {
    assert_eq!(
        dump("'a' 'a 'static '\\'' '\\u{41}' 'outer: loop <'b>"),
        vec![
            "Char:'a'",
            "Lifetime:'a",
            "Lifetime:'static",
            "Char:'\\''",
            "Char:'\\u{41}'",
            "Lifetime:'outer",
            "Punct::",
            "Ident:loop",
            "Punct:<",
            "Lifetime:'b",
            "Punct:>",
        ]
    );
}

#[test]
fn comment_content_inside_strings_stays_a_string() {
    assert_eq!(
        dump(r#"let s = "// not a comment /* nor this */";"#),
        vec![
            "Ident:let",
            "Ident:s",
            "Punct:=",
            r#"Str:"// not a comment /* nor this */""#,
            "Punct:;",
        ]
    );
}

#[test]
fn string_content_inside_comments_stays_a_comment() {
    assert_eq!(
        dump("// \"unterminated in a comment\nnext"),
        vec!["LineComment:// \"unterminated in a comment", "Ident:next",]
    );
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    assert_eq!(dump(r#""a \" b" c"#), vec![r#"Str:"a \" b""#, "Ident:c"]);
}

#[test]
fn numbers_ranges_and_floats() {
    // `1.5` is one number; `0..n` keeps the range dots as punctuation.
    assert_eq!(
        dump("1.5 0..n 0x1f_u64 1_000"),
        vec![
            "Number:1.5",
            "Number:0",
            "Punct:.",
            "Punct:.",
            "Ident:n",
            "Number:0x1f_u64",
            "Number:1_000",
        ]
    );
}

#[test]
fn doc_comments_are_comments() {
    assert_eq!(
        dump("/// outer doc\n//! inner doc\n/** block doc */ x"),
        vec![
            "LineComment:/// outer doc",
            "LineComment://! inner doc",
            "BlockComment:/** block doc */",
            "Ident:x",
        ]
    );
}

#[test]
fn unterminated_literals_run_to_eof_without_panicking() {
    assert_eq!(dump("\"open"), vec!["Str:\"open"]);
    assert_eq!(dump("r#\"open"), vec!["RawStr:r#\"open"]);
    assert_eq!(dump("/* open"), vec!["BlockComment:/* open"]);
    assert_eq!(dump("'\\x"), vec!["Char:'\\x"]);
}

#[test]
fn every_byte_is_covered_and_lines_are_monotonic() {
    let src = "fn main() {\n    let s = \"x\\ny\";\n    // done\n}\n";
    let toks = lex(src);
    let mut last_end = 0usize;
    let mut last_line = 1u32;
    for t in &toks {
        assert!(t.start >= last_end, "tokens must not overlap");
        assert!(t.line >= last_line, "line numbers must be monotonic");
        last_end = t.end;
        last_line = t.line;
    }
    assert_eq!(toks.last().map(|t| t.text(src)), Some("}"));
}
