// L002 fixture: wall-clock reads outside the timing module.
use std::time::Instant; // fire: line 2

fn measure() -> u64 {
    let t0 = Instant::now(); // fire: line 5
    let _st = std::time::SystemTime::now(); // fire: line 6
    t0.elapsed().as_nanos() as u64
}

fn allowed() {
    // lint:allow(L002): one-off startup banner, never feeds a measurement
    let _boot = std::time::SystemTime::now(); // suppressed (marker above)
    let _t = Instant::now(); // lint:allow(L002): trailing same-line marker
}

#[cfg(test)]
mod tests {
    use std::time::Instant; // clean: test code

    fn t() {
        let _ = Instant::now(); // clean
    }
}
