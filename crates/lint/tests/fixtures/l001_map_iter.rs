// L001 fixture: hash collections in library code.
use std::collections::HashMap; // fire: line 2
use std::collections::HashSet; // fire: line 3
use std::collections::BTreeMap; // clean

// lint:allow(L001): membership-only set, never iterated
use std::collections::HashSet as AllowedSet; // suppressed by the marker above

fn strings_do_not_count() -> &'static str {
    "HashMap in a string literal is fine" // clean: not an ident
}

// A doc comment mentioning HashMap is fine too: comments are not idents.

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // clean: cfg(test) mod is test code

    fn helper() {
        let _m: HashMap<u32, u32> = HashMap::new(); // clean
    }
}
