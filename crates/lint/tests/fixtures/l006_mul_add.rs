// L006 fixture: FMA contraction outside the kernel files.

fn contracted(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c) // fire: line 4
}

fn separate(a: f64, b: f64, c: f64) -> f64 {
    a * b + c // clean: two roundings, matches the committed artifacts
}

fn waived(a: f64, b: f64, c: f64) -> f64 {
    // lint:allow(L006): fixture demonstrating the suppression path
    a.mul_add(b, c) // suppressed
}
