// L004 fixture: cache-key firewall breaches from an unregistered file.

fn minted_elsewhere(w: &dyn Workload) -> MeasureKey {
    MeasureKey::with_variant(w, kind(), 7, "rogue-mode") // fire: line 4
}

fn ad_hoc_format(seed: u64) -> String {
    format!("v2|w=rogue|var=boot-split|seed={seed:016x}") // fire: line 8
}

fn waived(w: &dyn Workload) -> MeasureKey {
    // lint:allow(L004): fixture demonstrating the suppression path
    MeasureKey::with_variant(w, kind(), 7, "waived-mode") // suppressed
}

fn unrelated_pipe_string() -> &'static str {
    "a|b|c" // clean: no key-segment marker
}

#[cfg(test)]
mod tests {
    fn asserts_on_canon() {
        assert!(canon.ends_with("|var=boot-split")); // clean: test code
    }
}
