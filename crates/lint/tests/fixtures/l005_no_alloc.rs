// L005 fixture: allocation calls inside a marked region.

// lint: no-alloc
fn hot_loop(xs: &[f64], out: &mut [f64]) {
    let copied = xs.to_vec(); // fire: line 5
    let label = format!("step {}", out.len()); // fire: line 6
    let mut scratch = Vec::new(); // fire: line 7 (Vec::new)
    let grown = vec![0.0; 4]; // fire: line 8 (vec!)
    // lint:allow(L005): fixture demonstrating the suppression path
    let waived = xs.to_vec(); // suppressed
    out[0] = copied[0] + grown[0] + waived[0] + label.len() as f64 + scratch.pop().unwrap_or(0.0);
}

fn cold_path(xs: &[f64]) -> Vec<f64> {
    xs.to_vec() // clean: unmarked fn may allocate freely
}
