//! L003 fixture: a crate root that forbids unsafe code — no diagnostic.

#![forbid(unsafe_code)]

fn fine() {}
