// L003 fixture: a crate root (pretend path src/lib.rs) that neither
// forbids unsafe code nor justifies its unsafe blocks.
// (The missing #![forbid(unsafe_code)] fires on line 1.)

fn naked() {
    let x = [1u8, 2];
    let _ = unsafe { *x.as_ptr() }; // fire: line 7 (no SAFETY comment)
}

fn documented() {
    let x = [1u8, 2];
    // SAFETY: as_ptr() of a live array is valid to read at offset 0.
    let _ = unsafe { *x.as_ptr() }; // clean: adjacent SAFETY comment
}

fn waived() {
    let x = [1u8, 2];
    // lint:allow(L003): exercising the suppression path in the fixture
    let _ = unsafe { *x.as_ptr() }; // suppressed
}
