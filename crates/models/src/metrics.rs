//! Evaluation metrics: the `e` of the paper's empirical risk
//! `R̂_e(h, S) = (1/|S|) Σ e(h(x), y)`.
//!
//! Each case study uses the paper's metric for that task: classification
//! accuracy (CIFAR10, GLUE), mean IoU (PascalVOC), ROC-AUC and Pearson
//! correlation (MHC).

pub use varbench_stats::correlation::pearson;

use varbench_stats::correlation::ranks;

/// Classification accuracy: fraction of exact label matches.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_models::metrics::accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy length mismatch");
    assert!(!pred.is_empty(), "accuracy of empty sample");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Classification error rate `1 − accuracy`.
///
/// # Panics
///
/// As [`accuracy`].
pub fn error_rate(pred: &[usize], truth: &[usize]) -> f64 {
    1.0 - accuracy(pred, truth)
}

/// Intersection-over-union of one predicted binary mask against the truth,
/// averaged over foreground and background (the paper's PascalVOC metric
/// treats background as a class: "the mean Intersection over Union of the
/// twenty classes and the background class").
///
/// Masks are given as probabilities/indicators; cells are binarized at 0.5.
/// A class absent from both prediction and truth scores IoU 1 for that
/// class (nothing to get wrong).
///
/// # Panics
///
/// Panics if lengths differ or masks are empty.
pub fn mask_iou(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mask length mismatch");
    assert!(!pred.is_empty(), "IoU of empty mask");
    let mut inter_fg = 0usize;
    let mut union_fg = 0usize;
    let mut inter_bg = 0usize;
    let mut union_bg = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        let p = *p > 0.5;
        let t = *t > 0.5;
        if p && t {
            inter_fg += 1;
        }
        if p || t {
            union_fg += 1;
        }
        if !p && !t {
            inter_bg += 1;
        }
        if !p || !t {
            union_bg += 1;
        }
    }
    let iou_fg = if union_fg == 0 {
        1.0
    } else {
        inter_fg as f64 / union_fg as f64
    };
    let iou_bg = if union_bg == 0 {
        1.0
    } else {
        inter_bg as f64 / union_bg as f64
    };
    (iou_fg + iou_bg) / 2.0
}

/// Mean IoU over a batch of masks.
///
/// # Panics
///
/// Panics if the batch is empty or shapes disagree.
pub fn mean_iou(pred: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "batch length mismatch");
    assert!(!pred.is_empty(), "mean IoU of empty batch");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| mask_iou(p, t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Area under the ROC curve via the rank statistic
/// (`AUC = (R₊ − n₊(n₊+1)/2) / (n₊ n₋)`, midranks for ties).
///
/// `labels[i]` is `true` for positives. Returns 0.5 when one class is
/// absent (no ranking information).
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
///
/// # Example
///
/// ```
/// use varbench_models::metrics::roc_auc;
/// // Perfect ranking.
/// let auc = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
/// assert_eq!(auc, 1.0);
/// ```
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "roc_auc length mismatch");
    assert!(!scores.is_empty(), "roc_auc of empty sample");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let r = ranks(scores);
    let rank_sum_pos: f64 = r
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(rank, _)| rank)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse length mismatch");
    assert!(!pred.is_empty(), "rmse of empty sample");
    (pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Coefficient of determination R².
///
/// # Panics
///
/// Panics if lengths differ, fewer than 2 points, or the truth is constant.
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "r_squared length mismatch");
    assert!(pred.len() >= 2, "r_squared requires at least 2 points");
    let mean_t = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p).powi(2)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean_t).powi(2)).sum();
    assert!(ss_tot > 0.0, "r_squared undefined for constant truth");
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_error_complement() {
        let p = [0, 1, 2, 1];
        let t = [0, 1, 1, 1];
        assert_eq!(accuracy(&p, &t), 0.75);
        assert_eq!(error_rate(&p, &t), 0.25);
    }

    #[test]
    fn iou_perfect_and_disjoint() {
        assert_eq!(mask_iou(&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0]), 1.0);
        // Disjoint foregrounds: fg IoU 0; bg IoU = 0/... compute:
        // pred fg {0}, truth fg {1}: inter_fg=0, union_fg=2 → 0.
        // bg: pred {1,2}, truth {0,2}: inter={2} (1), union={0,1,2} (3) → 1/3.
        let iou = mask_iou(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]);
        assert!((iou - (0.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn iou_empty_masks_score_one() {
        assert_eq!(mask_iou(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(mask_iou(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn mean_iou_averages() {
        let pred = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let truth = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        assert_eq!(mean_iou(&pred, &truth), 1.0);
    }

    #[test]
    fn auc_reference_cases() {
        // Random ranking → 0.5 on average; here a hand case with one error:
        // scores: pos 0.9, 0.4; neg 0.6, 0.1 → pairs: (0.9>0.6),(0.9>0.1),
        // (0.4<0.6),(0.4>0.1) → 3/4.
        let auc = roc_auc(&[0.9, 0.4, 0.6, 0.1], &[true, true, false, false]);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_is_half_credit() {
        let auc = roc_auc(&[0.5, 0.5], &[true, false]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_ranking_is_zero() {
        let auc = roc_auc(&[0.1, 0.9], &[true, false]);
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn auc_single_class_degenerate() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn rmse_known() {
        assert!((rmse(&[1.0, 2.0], &[0.0, 4.0]) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let t = [1.0, 2.0, 3.0];
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&mean_pred, &t).abs() < 1e-12);
    }

    #[test]
    fn pearson_reexported() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "accuracy length mismatch")]
    fn accuracy_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }
}
