//! Bagged MLP ensembles.
//!
//! The MHCflurry baseline of the paper's Table 8/9 "uses ensembling to
//! perform predictions; ... for each MHC allele, an ensemble of 8-16 are
//! selected from the 320 that were trained". This module provides the
//! bagging substrate for that comparison: `k` MLPs trained on bootstrap
//! replicates, predictions averaged. Bagging is also the paper's own
//! theoretical reference point for why randomizing variance sources reduces
//! estimator variance (§5 cites Breiman 1996).

use crate::mlp::{argmax, EvalWorkspace, Mlp, MlpConfig, PredictBuffer, TrainConfig, TrainSeeds};
use varbench_data::augment::Augment;
use varbench_data::Dataset;
use varbench_rng::{bootstrap_indices, SeedTree};

/// An ensemble of bagged MLPs with averaged predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpEnsemble {
    members: Vec<Mlp>,
}

/// Reusable scratch for the `MlpEnsemble::*_with` / `*_batch_into`
/// prediction methods: one forward-pass buffer (and batched workspace)
/// shared across every member, plus the probability accumulators.
///
/// Before this existed, each convenience call allocated one fresh
/// [`PredictBuffer`] *per member per example*; with a warm buffer the
/// whole ensemble prediction is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct EnsembleBuffer {
    /// Per-example forward scratch, shared by all members.
    buf: PredictBuffer,
    /// Batched forward scratch, shared by all members.
    eval: EvalWorkspace,
    /// Per-member probabilities / values before accumulation.
    probs: Vec<f64>,
    /// Running member average.
    acc: Vec<f64>,
}

impl EnsembleBuffer {
    /// Creates an empty buffer (it warms up on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl MlpEnsemble {
    /// Trains `k` MLPs, each on an independent bootstrap replicate of
    /// `dataset`, with per-member seed subtrees derived from `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or as [`Mlp::train`].
    pub fn train(
        k: usize,
        config: &MlpConfig,
        train: &TrainConfig,
        dataset: &Dataset,
        augment: &dyn Augment,
        tree: &SeedTree,
    ) -> Self {
        assert!(k > 0, "ensemble requires at least one member");
        let members = (0..k)
            .map(|m| {
                let subtree = tree.subtree_indexed("ensemble_member", m as u64);
                let mut boot_rng = subtree.rng("bag");
                let idx = bootstrap_indices(&mut boot_rng, dataset.len(), dataset.len());
                let bag = dataset.subset(&idx);
                let mut seeds = TrainSeeds::from_tree(&subtree);
                Mlp::train(config, train, &bag, augment, &mut seeds)
            })
            .collect();
        Self { members }
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true for a constructed
    /// ensemble).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Averaged regression prediction.
    ///
    /// # Panics
    ///
    /// Panics if members do not have MSE heads.
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        let mut eb = EnsembleBuffer::new();
        self.predict_value_with(x, &mut eb)
    }

    /// Averaged regression prediction reusing caller scratch.
    ///
    /// Bitwise identical to [`Self::predict_value`]: the member sum is
    /// seeded at `0.0` and accumulated in member order, exactly as the
    /// iterator `sum` the convenience wrapper used to run.
    ///
    /// # Panics
    ///
    /// Panics if members do not have MSE heads.
    // lint: no-alloc
    pub fn predict_value_with(&self, x: &[f64], eb: &mut EnsembleBuffer) -> f64 {
        let mut sum = 0.0;
        for m in &self.members {
            sum += m.predict_value_with(x, &mut eb.buf);
        }
        sum / self.members.len() as f64
    }

    /// Averaged class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if members do not have softmax heads.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut eb = EnsembleBuffer::new();
        self.predict_proba_with(x, &mut eb).to_vec()
    }

    /// Averaged class probabilities reusing caller scratch.
    ///
    /// Bitwise identical to [`Self::predict_proba`]: member 0 seeds the
    /// accumulator, members 1.. add in order, then one divide by `k`.
    ///
    /// # Panics
    ///
    /// Panics if members do not have softmax heads.
    // lint: no-alloc
    pub fn predict_proba_with<'a>(&self, x: &[f64], eb: &'a mut EnsembleBuffer) -> &'a [f64] {
        self.members[0].predict_proba_into(x, &mut eb.buf, &mut eb.acc);
        for m in &self.members[1..] {
            m.predict_proba_into(x, &mut eb.buf, &mut eb.probs);
            for (a, p) in eb.acc.iter_mut().zip(eb.probs.iter()) {
                *a += *p;
            }
        }
        let k = self.members.len() as f64;
        for a in eb.acc.iter_mut() {
            *a /= k;
        }
        &eb.acc
    }

    /// Majority-probability class prediction.
    ///
    /// # Panics
    ///
    /// Panics if members do not have softmax heads.
    pub fn predict_class(&self, x: &[f64]) -> usize {
        let mut eb = EnsembleBuffer::new();
        self.predict_class_with(x, &mut eb)
    }

    /// Majority-probability class prediction reusing caller scratch.
    ///
    /// # Panics
    ///
    /// Panics if members do not have softmax heads.
    // lint: no-alloc
    pub fn predict_class_with(&self, x: &[f64], eb: &mut EnsembleBuffer) -> usize {
        argmax(self.predict_proba_with(x, eb))
    }

    /// Batched averaged regression predictions over `n` staged examples.
    ///
    /// `stage(si, row)` fills input row `si`, exactly as in
    /// [`Mlp::predict_values_batch_into`]. Per example the member sum is
    /// seeded at `0.0` and accumulated in member order, then divided once
    /// by `k` — the same chain as [`Self::predict_value`], so results are
    /// bitwise identical to the per-example path.
    ///
    /// # Panics
    ///
    /// Panics if members do not have MSE heads or `n == 0`.
    // lint: no-alloc
    pub fn predict_values_batch_into(
        &self,
        n: usize,
        mut stage: impl FnMut(usize, &mut [f64]),
        eb: &mut EnsembleBuffer,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(n, 0.0);
        for m in &self.members {
            m.predict_values_batch_into(n, &mut stage, &mut eb.eval, &mut eb.probs);
            for (o, v) in out.iter_mut().zip(eb.probs.iter()) {
                *o += *v;
            }
        }
        let k = self.members.len() as f64;
        for o in out.iter_mut() {
            *o /= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_data::augment::Identity;
    use varbench_data::synth::{self, BinaryOverlapConfig, BindingConfig};
    use varbench_rng::Rng;

    fn small_train() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            ..Default::default()
        }
    }

    #[test]
    fn ensemble_classifies_separable_data() {
        let mut rng = Rng::seed_from_u64(1);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 5.0,
                n: 300,
                ..Default::default()
            },
            &mut rng,
        );
        let ens = MlpEnsemble::train(
            5,
            &MlpConfig::default(),
            &small_train(),
            &ds,
            &Identity,
            &SeedTree::new(1),
        );
        assert_eq!(ens.len(), 5);
        let acc = (0..ds.len())
            .filter(|&i| ens.predict_class(ds.x(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.9, "ensemble accuracy {acc}");
    }

    #[test]
    fn ensemble_regression_beats_or_matches_single_member_variance() {
        // Train several single models and several ensembles on the same
        // task with different seeds; the spread of ensemble predictions at
        // a fixed input should not exceed the single-model spread (bagging
        // variance reduction).
        let mut rng = Rng::seed_from_u64(2);
        let ds = synth::binding_regression(
            &BindingConfig {
                n: 300,
                ..Default::default()
            },
            &mut rng,
        );
        let probe: Vec<f64> = vec![0.2; ds.dim()];
        let cfg = MlpConfig {
            hidden: vec![8],
            ..Default::default()
        };
        let singles: Vec<f64> = (0..6)
            .map(|s| {
                let mut seeds = TrainSeeds::from_tree(&SeedTree::new(100 + s));
                Mlp::train(&cfg, &small_train(), &ds, &Identity, &mut seeds).predict_value(&probe)
            })
            .collect();
        let ensembles: Vec<f64> = (0..6)
            .map(|s| {
                MlpEnsemble::train(
                    6,
                    &cfg,
                    &small_train(),
                    &ds,
                    &Identity,
                    &SeedTree::new(200 + s),
                )
                .predict_value(&probe)
            })
            .collect();
        let spread = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            spread(&ensembles) <= spread(&singles) * 1.5,
            "ensemble spread {} vs single {}",
            spread(&ensembles),
            spread(&singles)
        );
    }

    #[test]
    fn ensemble_deterministic_given_tree() {
        let mut rng = Rng::seed_from_u64(3);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                n: 100,
                ..Default::default()
            },
            &mut rng,
        );
        let a = MlpEnsemble::train(
            3,
            &MlpConfig::default(),
            &small_train(),
            &ds,
            &Identity,
            &SeedTree::new(4),
        );
        let b = MlpEnsemble::train(
            3,
            &MlpConfig::default(),
            &small_train(),
            &ds,
            &Identity,
            &SeedTree::new(4),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn proba_averages_are_normalized() {
        let mut rng = Rng::seed_from_u64(5);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                n: 100,
                ..Default::default()
            },
            &mut rng,
        );
        let ens = MlpEnsemble::train(
            3,
            &MlpConfig::default(),
            &small_train(),
            &ds,
            &Identity,
            &SeedTree::new(6),
        );
        let p = ens.predict_proba(ds.x(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let ds = Dataset_for_panic();
        MlpEnsemble::train(
            0,
            &MlpConfig::default(),
            &small_train(),
            &ds,
            &Identity,
            &SeedTree::new(7),
        );
    }

    #[allow(non_snake_case)]
    fn Dataset_for_panic() -> varbench_data::Dataset {
        let mut rng = Rng::seed_from_u64(8);
        synth::binary_overlap(
            &BinaryOverlapConfig {
                n: 10,
                ..Default::default()
            },
            &mut rng,
        )
    }
}
