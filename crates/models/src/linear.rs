//! Linear models: logistic regression and closed-form ridge regression.

use crate::init::Init;
use crate::mlp::{EvalWorkspace, Mlp, MlpConfig, PredictBuffer, TrainConfig, TrainSeeds};
use varbench_data::augment::Identity;
use varbench_data::Dataset;
use varbench_linalg::{gemm_transb_into, Cholesky, Matrix};

/// Logistic / softmax regression: an [`Mlp`] with no hidden layers.
///
/// Kept as a named type because several baselines in the experiments are
/// linear (and the distinction matters when reporting — e.g. the NetMHC
/// comparison of the paper's Table 8 pits shallow nets against each other).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    inner: Mlp,
}

impl LogisticRegression {
    /// Trains a (multinomial) logistic regression with SGD.
    ///
    /// # Panics
    ///
    /// As [`Mlp::train`]; additionally if the dataset targets are not class
    /// labels.
    pub fn train(train: &TrainConfig, dataset: &Dataset, seeds: &mut TrainSeeds) -> Self {
        assert!(
            matches!(dataset.targets(), varbench_data::Targets::Labels { .. }),
            "logistic regression requires label targets"
        );
        let inner = Mlp::train(
            &MlpConfig {
                hidden: vec![],
                init: Init::GlorotUniform,
            },
            train,
            dataset,
            &Identity,
            seeds,
        );
        Self { inner }
    }

    /// Predicted class.
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.inner.predict_class(x)
    }

    /// Predicted class reusing caller scratch (bitwise identical to
    /// [`Self::predict_class`]).
    // lint: no-alloc
    pub fn predict_class_with(&self, x: &[f64], buf: &mut PredictBuffer) -> usize {
        self.inner.predict_class_with(x, buf)
    }

    /// Class probabilities.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.inner.predict_proba(x)
    }

    /// Batched class predictions over `n` staged examples; delegates to
    /// [`Mlp::predict_classes_batch_into`], so each prediction is bitwise
    /// identical to the per-example path.
    // lint: no-alloc
    pub fn predict_classes_batch_into(
        &self,
        n: usize,
        stage: impl FnMut(usize, &mut [f64]),
        ws: &mut EvalWorkspace,
        out: &mut Vec<usize>,
    ) {
        self.inner.predict_classes_batch_into(n, stage, ws, out);
    }
}

/// Ridge regression solved in closed form via Cholesky:
/// `w = (XᵀX + λI)⁻¹ Xᵀ y` (bias handled by feature augmentation).
///
/// # Example
///
/// ```
/// use varbench_data::{Dataset, Targets};
/// use varbench_models::linear::RidgeRegression;
///
/// // y = 2x + 1 exactly.
/// let xs: Vec<f64> = (0..20).map(|i| i as f64 / 10.0).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let ds = Dataset::new(xs, 1, Targets::Values(ys));
/// let model = RidgeRegression::fit(&ds, 1e-9);
/// assert!((model.predict(&[0.5]) - 2.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    /// Weights for each input feature.
    weights: Vec<f64>,
    /// Intercept term.
    bias: f64,
}

impl RidgeRegression {
    /// Fits ridge regression with regularization strength `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, targets are not regression values,
    /// or `lambda < 0`.
    pub fn fit(dataset: &Dataset, lambda: f64) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on empty dataset");
        assert!(lambda >= 0.0, "lambda must be >= 0");
        let n = dataset.len();
        let d = dataset.dim();
        // Augment with a constant-1 feature for the bias (not regularized
        // via a tiny lambda difference — for simplicity we regularize it
        // too, which is standard in many implementations).
        let da = d + 1;
        let mut xtx = Matrix::zeros(da, da);
        let mut xty = vec![0.0; da];
        let mut xa = vec![0.0; da];
        for i in 0..n {
            xa[..d].copy_from_slice(dataset.x(i));
            xa[d] = 1.0;
            let y = dataset.value(i);
            // Full-square rank-1 update through contiguous row slices.
            // Redundant work below the diagonal (the mirror pass
            // overwrites it anyway), but every row is a full-width
            // bounds-check-free pass the compiler vectorizes — measurably
            // faster than the ragged triangle at these dimensions. The
            // upper-triangle elements receive exactly the same ascending-
            // sample additions as the seed's triangular loop.
            for r in 0..da {
                let xr = xa[r];
                for (acc, &xc) in xtx.row_mut(r).iter_mut().zip(&xa) {
                    *acc += xr * xc;
                }
                xty[r] += xr * y;
            }
        }
        // Mirror the upper triangle (the accumulated lower triangle is
        // already bit-identical by commutativity of each product, but the
        // explicit mirror keeps the seed's invariant self-evident).
        for r in 0..da {
            for c in 0..r {
                xtx[(r, c)] = xtx[(c, r)];
            }
        }
        xtx.add_diagonal(lambda.max(1e-12));
        let chol = Cholesky::new_with_jitter(&xtx, 1e-10, 12)
            .expect("ridge normal equations should be SPD with jitter");
        let w = chol.solve(&xty);
        Self {
            weights: w[..d].to_vec(),
            bias: w[d],
        }
    }

    /// Predicts the target for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "input dimension mismatch");
        self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>()
    }

    /// Batched prediction over `xs` (`n × d` example-major): routes the
    /// shared weight vector through the batch GEMM kernel, then applies
    /// the intercept per element.
    ///
    /// Bitwise identical to [`Self::predict`] per element: the kernel
    /// accumulates `Σ_k w_k·x_k` from `0.0` in ascending `k` (exactly the
    /// iterator sum of the scalar path), and `bias + sum` stays one final
    /// separately rounded add.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != out.len() * self.weights.len()`.
    // lint: no-alloc
    pub fn predict_batch_into(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(
            xs.len(),
            out.len() * self.weights.len(),
            "input dimension mismatch"
        );
        gemm_transb_into(xs, &self.weights, &[], 1, out);
        for o in out.iter_mut() {
            *o += self.bias;
        }
    }

    /// The fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_data::synth::{self, BinaryOverlapConfig};
    use varbench_data::Targets;
    use varbench_rng::{Rng, SeedTree};

    #[test]
    fn logistic_learns_separable() {
        let mut rng = Rng::seed_from_u64(1);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 5.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(1));
        let model = LogisticRegression::train(
            &TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            &ds,
            &mut seeds,
        );
        let acc = (0..ds.len())
            .filter(|&i| model.predict_class(ds.x(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        let p = model.predict_proba(ds.x(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_recovers_exact_linear_function() {
        // y = 3 x0 - 2 x1 + 0.5.
        let mut rng = Rng::seed_from_u64(2);
        let mut features = Vec::new();
        let mut values = Vec::new();
        for _ in 0..200 {
            let a = rng.normal(0.0, 1.0);
            let b = rng.normal(0.0, 1.0);
            features.push(a);
            features.push(b);
            values.push(3.0 * a - 2.0 * b + 0.5);
        }
        let ds = Dataset::new(features, 2, Targets::Values(values));
        let model = RidgeRegression::fit(&ds, 1e-8);
        assert!((model.weights()[0] - 3.0).abs() < 1e-4);
        assert!((model.weights()[1] + 2.0).abs() < 1e-4);
        assert!((model.bias() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn ridge_shrinks_with_lambda() {
        let mut rng = Rng::seed_from_u64(3);
        let mut features = Vec::new();
        let mut values = Vec::new();
        for _ in 0..100 {
            let a = rng.normal(0.0, 1.0);
            features.push(a);
            values.push(2.0 * a + rng.normal(0.0, 0.1));
        }
        let ds = Dataset::new(features, 1, Targets::Values(values));
        let loose = RidgeRegression::fit(&ds, 1e-6);
        let tight = RidgeRegression::fit(&ds, 1000.0);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
        assert!(tight.weights()[0].abs() < 0.5, "strong ridge should shrink");
    }

    #[test]
    fn ridge_deterministic() {
        let ds = Dataset::new(vec![1.0, 2.0, 3.0], 1, Targets::Values(vec![1.0, 2.0, 3.0]));
        assert_eq!(
            RidgeRegression::fit(&ds, 0.1),
            RidgeRegression::fit(&ds, 0.1)
        );
    }

    #[test]
    #[should_panic(expected = "requires label targets")]
    fn logistic_rejects_regression_targets() {
        let ds = Dataset::new(vec![1.0], 1, Targets::Values(vec![1.0]));
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(4));
        LogisticRegression::train(&TrainConfig::default(), &ds, &mut seeds);
    }
}
