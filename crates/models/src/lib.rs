//! From-scratch trainable models with explicitly seeded stochasticity.
//!
//! The paper's learning pipelines (VGG11, BERT fine-tuning, FCN, shallow
//! MLPs) are stochastic processes whose variance sources — weight
//! initialization, data visit order, dropout masks, data augmentation —
//! must be *independently seedable* to be studied (paper §2.2 & Appendix A).
//! The models in this crate are built around that requirement:
//! [`TrainSeeds`] carries one RNG stream per variance source, and every
//! training routine consumes exactly those streams, nothing global.
//!
//! * [`Mlp`] — multilayer perceptron with ReLU hidden layers, dropout,
//!   SGD + momentum + weight decay + exponential learning-rate decay
//!   (mirroring the paper's Table 2 hyperparameter space), and softmax /
//!   sigmoid-BCE / MSE heads for classification, dense-mask, and regression
//!   tasks.
//! * [`linear`] — logistic regression and closed-form ridge regression.
//! * [`ensemble`] — bagged MLP ensembles (the MHCflurry-style baseline of
//!   the paper's Table 8).
//! * [`metrics`] — accuracy, error rate, mean IoU, ROC-AUC, Pearson
//!   correlation, RMSE/R².
//!
//! # Example
//!
//! ```
//! use varbench_data::{synth, augment::Identity};
//! use varbench_models::{metrics, Mlp, MlpConfig, TrainConfig, TrainSeeds};
//! use varbench_rng::{Rng, SeedTree};
//!
//! let mut data_rng = Rng::seed_from_u64(7);
//! let ds = synth::binary_overlap(
//!     &synth::BinaryOverlapConfig { separation: 4.0, ..Default::default() },
//!     &mut data_rng,
//! );
//! let mut seeds = TrainSeeds::from_tree(&SeedTree::new(0));
//! let mlp = Mlp::train(
//!     &MlpConfig { hidden: vec![8], ..Default::default() },
//!     &TrainConfig { epochs: 10, ..Default::default() },
//!     &ds,
//!     &Identity,
//!     &mut seeds,
//! );
//! let preds: Vec<usize> = (0..ds.len()).map(|i| mlp.predict_class(ds.x(i))).collect();
//! let acc = metrics::accuracy(&preds, ds.labels());
//! assert!(acc > 0.8, "separable task should be learnable: {acc}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod linear;
pub mod metrics;

mod init;
mod mlp;

pub use init::Init;
pub use mlp::{EvalWorkspace, Head, Mlp, MlpConfig, PredictBuffer, TrainConfig, TrainSeeds};
