//! Weight initialization schemes.

use varbench_rng::Rng;

/// A weight-initialization scheme.
///
/// Initialization is one of the ξ_O variance sources the paper measures
/// ("Weights init" row of Fig. 1); each scheme consumes the dedicated
/// `weights_init` RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// Glorot (Xavier) uniform: `U(−a, a)` with `a = sqrt(6/(fan_in + fan_out))`.
    /// The paper's CIFAR10-VGG11 and MHC-MLP setups use this scheme.
    #[default]
    GlorotUniform,
    /// He normal: `N(0, sqrt(2/fan_in))`, the standard choice for ReLU nets.
    HeNormal,
    /// Plain normal with explicit standard deviation — the BERT-head
    /// initialization of the paper's Table 3, where `std` is itself a
    /// hyperparameter.
    Normal {
        /// Standard deviation of the weight distribution.
        std: f64,
    },
}

impl Init {
    /// Samples one weight for a layer with the given fan-in/fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0` or `fan_out == 0`.
    pub fn sample(&self, fan_in: usize, fan_out: usize, rng: &mut Rng) -> f64 {
        assert!(fan_in > 0 && fan_out > 0, "fan sizes must be > 0");
        match self {
            Init::GlorotUniform => {
                let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
                rng.uniform(-a, a)
            }
            Init::HeNormal => rng.normal(0.0, (2.0 / fan_in as f64).sqrt()),
            Init::Normal { std } => rng.normal(0.0, *std),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_many(init: Init, fan_in: usize, fan_out: usize, n: usize) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(1);
        (0..n)
            .map(|_| init.sample(fan_in, fan_out, &mut rng))
            .collect()
    }

    #[test]
    fn glorot_respects_bounds() {
        let a = (6.0 / 20.0f64).sqrt();
        for w in sample_many(Init::GlorotUniform, 10, 10, 10_000) {
            assert!(w.abs() <= a, "w={w} bound={a}");
        }
    }

    #[test]
    fn glorot_variance_matches_formula() {
        // Var(U(-a, a)) = a²/3 = 2/(fan_in + fan_out).
        let ws = sample_many(Init::GlorotUniform, 16, 8, 100_000);
        let var = ws.iter().map(|w| w * w).sum::<f64>() / ws.len() as f64;
        let expected = 2.0 / 24.0;
        assert!((var / expected - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_normal_std() {
        let ws = sample_many(Init::HeNormal, 50, 10, 100_000);
        let var = ws.iter().map(|w| w * w).sum::<f64>() / ws.len() as f64;
        assert!((var / (2.0 / 50.0) - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn explicit_normal_std() {
        let ws = sample_many(Init::Normal { std: 0.2 }, 1, 1, 100_000);
        let var = ws.iter().map(|w| w * w).sum::<f64>() / ws.len() as f64;
        assert!((var / 0.04 - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            Init::GlorotUniform.sample(4, 4, &mut a),
            Init::GlorotUniform.sample(4, 4, &mut b)
        );
    }
}
