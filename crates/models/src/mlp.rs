//! Multilayer perceptron with explicitly seeded training stochasticity.

use crate::init::Init;
use varbench_data::augment::Augment;
use varbench_data::{Dataset, Targets};
use varbench_rng::{Rng, SeedTree};

/// Output head of an [`Mlp`], selected from the dataset's target kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Head {
    /// Softmax + cross-entropy over `num_classes` logits (classification).
    Softmax,
    /// Independent sigmoid + binary cross-entropy per output (dense masks).
    SigmoidBce,
    /// Linear output + squared error (regression).
    Mse,
}

/// Architecture of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (empty = linear model).
    pub hidden: Vec<usize>,
    /// Weight initialization scheme.
    pub init: Init,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32],
            init: Init::GlorotUniform,
        }
    }
}

/// Optimization hyperparameters — the λ of the paper's Eq. 1, mirroring the
/// search dimensions of its Tables 2/3/5/6 (learning rate, weight decay,
/// momentum, exponential LR-decay γ, dropout, init std via [`MlpConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Per-epoch exponential learning-rate decay factor (the γ of the
    /// paper's Table 2 LR schedule).
    pub lr_gamma: f64,
    /// Dropout probability on hidden activations (0 disables).
    pub dropout: f64,
    /// Standard deviation of synthetic gradient noise, relative to the
    /// learning-rate-scaled update. Models the paper's "numerical noise"
    /// source (GPU nondeterminism) which a pure-Rust pipeline does not
    /// otherwise have; 0 disables (bit-deterministic training).
    pub grad_noise: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_gamma: 0.99,
            dropout: 0.0,
            grad_noise: 0.0,
        }
    }
}

/// One independent RNG stream per training variance source (ξ_O).
///
/// This is the paper's Appendix A seeding discipline made structural: each
/// source can be fixed or randomized independently of the others.
#[derive(Debug, Clone)]
pub struct TrainSeeds {
    /// Weight initialization stream.
    pub init: Rng,
    /// Data visit-order (shuffling) stream.
    pub order: Rng,
    /// Dropout mask stream.
    pub dropout: Rng,
    /// Data augmentation stream.
    pub augment: Rng,
    /// Synthetic numerical-noise stream.
    pub noise: Rng,
}

impl TrainSeeds {
    /// Standard labels used when deriving the five streams from a
    /// [`SeedTree`].
    pub const LABELS: [&'static str; 5] = [
        "weights_init",
        "data_order",
        "dropout",
        "data_augment",
        "numerical_noise",
    ];

    /// Derives all five streams from a seed tree using the standard labels.
    pub fn from_tree(tree: &SeedTree) -> Self {
        Self {
            init: tree.rng("weights_init"),
            order: tree.rng("data_order"),
            dropout: tree.rng("dropout"),
            augment: tree.rng("data_augment"),
            noise: tree.rng("numerical_noise"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Vec<f64>, // out_dim × in_dim, row-major
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng) -> Self {
        let w = (0..in_dim * out_dim)
            .map(|_| init.sample(in_dim, out_dim, rng))
            .collect();
        Self {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut s = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                s += wi * xi;
            }
            out.push(s);
        }
    }
}

/// A trained multilayer perceptron.
///
/// Construct with [`Mlp::train`]; prediction methods run the network
/// without dropout. See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    head: Head,
    in_dim: usize,
    out_dim: usize,
}

/// Scratch buffers reused across examples during training.
struct Workspace {
    /// Pre-activation and post-activation values per layer.
    acts: Vec<Vec<f64>>,
    /// Dropout keep-masks per hidden layer.
    masks: Vec<Vec<f64>>,
    /// Backpropagated deltas per layer.
    deltas: Vec<Vec<f64>>,
    /// Gradient accumulators (same shapes as weights/biases).
    gw: Vec<Vec<f64>>,
    gb: Vec<Vec<f64>>,
    /// Momentum buffers.
    vw: Vec<Vec<f64>>,
    vb: Vec<Vec<f64>>,
    /// Augmented input copy.
    x: Vec<f64>,
}

impl Mlp {
    /// Trains an MLP on `dataset` with the given architecture, optimizer
    /// settings, augmentation, and per-source seed streams.
    ///
    /// The output head is selected from the dataset's target kind:
    /// labels → softmax, masks → per-cell sigmoid BCE, values → MSE.
    ///
    /// Fully deterministic given `seeds` (when `grad_noise == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or a config value is out of range
    /// (e.g. dropout outside `[0, 1)`, non-positive batch size / epochs /
    /// learning rate).
    pub fn train(
        config: &MlpConfig,
        train: &TrainConfig,
        dataset: &Dataset,
        augment: &dyn Augment,
        seeds: &mut TrainSeeds,
    ) -> Mlp {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert!(train.epochs > 0, "epochs must be > 0");
        assert!(train.batch_size > 0, "batch_size must be > 0");
        assert!(train.learning_rate > 0.0, "learning_rate must be > 0");
        assert!(
            (0.0..1.0).contains(&train.dropout),
            "dropout must be in [0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&train.momentum),
            "momentum must be in [0,1]"
        );
        assert!(train.weight_decay >= 0.0, "weight_decay must be >= 0");
        assert!(
            train.lr_gamma > 0.0 && train.lr_gamma <= 1.0,
            "lr_gamma in (0,1]"
        );
        assert!(train.grad_noise >= 0.0, "grad_noise must be >= 0");

        let (head, out_dim) = match dataset.targets() {
            Targets::Labels { num_classes, .. } => (Head::Softmax, *num_classes),
            Targets::Masks { mask_len, .. } => (Head::SigmoidBce, *mask_len),
            Targets::Values(_) => (Head::Mse, 1),
        };

        // Build layers.
        let mut dims = vec![dataset.dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(out_dim);
        let layers: Vec<Dense> = dims
            .windows(2)
            .map(|d| Dense::new(d[0], d[1], config.init, &mut seeds.init))
            .collect();

        let mut model = Mlp {
            layers,
            head,
            in_dim: dataset.dim(),
            out_dim,
        };

        let mut ws = Workspace {
            acts: dims.iter().map(|&d| Vec::with_capacity(d)).collect(),
            masks: dims[1..dims.len() - 1]
                .iter()
                .map(|&d| vec![1.0; d])
                .collect(),
            deltas: dims.iter().map(|&d| vec![0.0; d]).collect(),
            gw: model.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            gb: model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            vw: model.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            vb: model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            x: vec![0.0; dataset.dim()],
        };

        let n = dataset.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut lr = train.learning_rate;

        for _epoch in 0..train.epochs {
            seeds.order.shuffle(&mut order);
            for batch in order.chunks(train.batch_size) {
                model.train_batch(batch, dataset, augment, train, lr, &mut ws, seeds);
            }
            lr *= train.lr_gamma;
        }
        model
    }

    #[allow(clippy::too_many_arguments)]
    fn train_batch(
        &mut self,
        batch: &[usize],
        dataset: &Dataset,
        augment: &dyn Augment,
        train: &TrainConfig,
        lr: f64,
        ws: &mut Workspace,
        seeds: &mut TrainSeeds,
    ) {
        for g in ws.gw.iter_mut().chain(ws.gb.iter_mut()) {
            for v in g.iter_mut() {
                *v = 0.0;
            }
        }

        for &i in batch {
            // Augmented input.
            ws.x.copy_from_slice(dataset.x(i));
            augment.augment(&mut ws.x, &mut seeds.augment);

            // Forward with dropout on hidden activations.
            ws.acts[0].clear();
            ws.acts[0].extend_from_slice(&ws.x);
            for (l, layer) in self.layers.iter().enumerate() {
                let (lo, hi) = ws.acts.split_at_mut(l + 1);
                layer.forward(&lo[l], &mut hi[0]);
                let is_hidden = l < self.layers.len() - 1;
                if is_hidden {
                    // ReLU.
                    for a in hi[0].iter_mut() {
                        if *a < 0.0 {
                            *a = 0.0;
                        }
                    }
                    // Inverted dropout.
                    if train.dropout > 0.0 {
                        let keep = 1.0 - train.dropout;
                        for (a, m) in hi[0].iter_mut().zip(ws.masks[l].iter_mut()) {
                            *m = if seeds.dropout.bernoulli(keep) {
                                1.0 / keep
                            } else {
                                0.0
                            };
                            *a *= *m;
                        }
                    }
                }
            }

            // Output delta = dLoss/dLogits.
            let last = self.layers.len();
            let out = &ws.acts[last];
            let delta_out = &mut ws.deltas[last];
            match self.head {
                Head::Softmax => {
                    softmax_into(out, delta_out);
                    let y = dataset.label(i);
                    delta_out[y] -= 1.0;
                }
                Head::SigmoidBce => {
                    let mask = dataset.mask(i);
                    delta_out.clear();
                    delta_out.extend(
                        out.iter()
                            .zip(mask)
                            .map(|(z, y)| 1.0 / (1.0 + (-z).exp()) - y),
                    );
                }
                Head::Mse => {
                    delta_out.clear();
                    delta_out.push(out[0] - dataset.value(i));
                }
            }

            // Backward.
            for l in (0..self.layers.len()).rev() {
                let layer = &self.layers[l];
                // Gradients for layer l: delta[l+1] ⊗ act[l].
                let (d_lo, d_hi) = ws.deltas.split_at_mut(l + 1);
                let delta = &d_hi[0];
                let act = &ws.acts[l];
                let gw = &mut ws.gw[l];
                let gb = &mut ws.gb[l];
                for o in 0..layer.out_dim {
                    let d = delta[o];
                    if d != 0.0 {
                        let row = &mut gw[o * layer.in_dim..(o + 1) * layer.in_dim];
                        for (g, a) in row.iter_mut().zip(act) {
                            *g += d * a;
                        }
                        gb[o] += d;
                    }
                }
                // Delta for layer below (if any): Wᵀ delta, gated by ReLU'
                // and the dropout mask.
                if l > 0 {
                    let below = &mut d_lo[l];
                    for v in below.iter_mut() {
                        *v = 0.0;
                    }
                    for (o, &d) in delta.iter().enumerate().take(layer.out_dim) {
                        if d != 0.0 {
                            let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (b, w) in below.iter_mut().zip(row) {
                                *b += d * w;
                            }
                        }
                    }
                    let act_below = &ws.acts[l];
                    let mask = &ws.masks[l - 1];
                    for (j, b) in below.iter_mut().enumerate() {
                        // ReLU derivative (post-activation > 0) and dropout
                        // gate; act_below already includes the mask so a
                        // dropped unit has activation 0 and passes no grad.
                        if act_below[j] <= 0.0 {
                            *b = 0.0;
                        } else if train.dropout > 0.0 {
                            *b *= mask[j];
                        }
                    }
                }
            }
        }

        // SGD update with momentum, weight decay, and optional noise.
        let scale = 1.0 / batch.len() as f64;
        for (l, layer) in self.layers.iter_mut().enumerate() {
            for (idx, w) in layer.w.iter_mut().enumerate() {
                let mut g = ws.gw[l][idx] * scale + train.weight_decay * *w;
                if train.grad_noise > 0.0 {
                    g += seeds.noise.normal(0.0, train.grad_noise);
                }
                let v = train.momentum * ws.vw[l][idx] - lr * g;
                ws.vw[l][idx] = v;
                *w += v;
            }
            for (idx, b) in layer.b.iter_mut().enumerate() {
                let mut g = ws.gb[l][idx] * scale;
                if train.grad_noise > 0.0 {
                    g += seeds.noise.normal(0.0, train.grad_noise);
                }
                let v = train.momentum * ws.vb[l][idx] - lr * g;
                ws.vb[l][idx] = v;
                *b += v;
            }
        }
    }

    /// The output head.
    pub fn head(&self) -> Head {
        self.head
    }

    /// L2 norm of all connection weights (biases excluded) — a diagnostic
    /// for regularization studies.
    pub fn weight_norm(&self) -> f64 {
        self.layers
            .iter()
            .flat_map(|l| l.w.iter())
            .map(|w| w * w)
            .sum::<f64>()
            .sqrt()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Raw output logits for input `x` (no dropout).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if l < self.layers.len() - 1 {
                for a in next.iter_mut() {
                    if *a < 0.0 {
                        *a = 0.0;
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Predicted class (argmax of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_class(&self, x: &[f64]) -> usize {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_class requires a softmax head"
        );
        let logits = self.logits(x);
        argmax(&logits)
    }

    /// Class probabilities (softmax of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_proba requires a softmax head"
        );
        let logits = self.logits(x);
        let mut out = Vec::with_capacity(logits.len());
        softmax_into(&logits, &mut out);
        out
    }

    /// Per-cell mask probabilities (sigmoid of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::SigmoidBce`].
    pub fn predict_mask(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.head,
            Head::SigmoidBce,
            "predict_mask requires a sigmoid head"
        );
        self.logits(x)
            .iter()
            .map(|z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    }

    /// Regression prediction.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Mse`].
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        assert_eq!(self.head, Head::Mse, "predict_value requires an MSE head");
        self.logits(x)[0]
    }
}

fn softmax_into(logits: &[f64], out: &mut Vec<f64>) {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(logits.iter().map(|z| (z - max).exp()));
    let total: f64 = out.iter().sum();
    for p in out.iter_mut() {
        *p /= total;
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_data::augment::{GaussianJitter, Identity};
    use varbench_data::synth::{self, BinaryOverlapConfig, GaussianMixtureConfig};

    fn seeds(root: u64) -> TrainSeeds {
        TrainSeeds::from_tree(&SeedTree::new(root))
    }

    fn accuracy_of(mlp: &Mlp, ds: &Dataset) -> f64 {
        let correct = (0..ds.len())
            .filter(|&i| mlp.predict_class(ds.x(i)) == ds.label(i))
            .count();
        correct as f64 / ds.len() as f64
    }

    #[test]
    fn learns_linearly_separable_task() {
        let mut rng = Rng::seed_from_u64(1);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 5.0,
                n: 400,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 15,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(1),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        // XOR is not linearly separable; a hidden layer must solve it.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..400 {
            let a = rng.bernoulli(0.5);
            let b = rng.bernoulli(0.5);
            features.push(if a { 1.0 } else { -1.0 } + rng.normal(0.0, 0.1));
            features.push(if b { 1.0 } else { -1.0 } + rng.normal(0.0, 0.1));
            labels.push(usize::from(a != b));
        }
        let ds = Dataset::new(
            features,
            2,
            Targets::Labels {
                labels,
                num_classes: 2,
            },
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![16],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.1,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(2),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn multiclass_mixture_learnable() {
        let mut rng = Rng::seed_from_u64(3);
        let ds = synth::gaussian_mixture(
            &GaussianMixtureConfig {
                num_classes: 5,
                n_per_class: 80,
                class_sep: 5.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(3),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.9, "5-class accuracy {acc}");
    }

    #[test]
    fn regression_fits_values() {
        let mut rng = Rng::seed_from_u64(4);
        // y = sigmoid(2 x0): smooth monotone target.
        let mut features = Vec::new();
        let mut values = Vec::new();
        for _ in 0..500 {
            let x = rng.normal(0.0, 1.0);
            features.push(x);
            values.push(1.0 / (1.0 + (-2.0 * x).exp()));
        }
        let ds = Dataset::new(features, 1, Targets::Values(values));
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![16],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(4),
        );
        let mse: f64 = (0..ds.len())
            .map(|i| (mlp.predict_value(ds.x(i)) - ds.value(i)).powi(2))
            .sum::<f64>()
            / ds.len() as f64;
        assert!(mse < 0.01, "regression MSE {mse}");
    }

    #[test]
    fn mask_head_learns_latent_structure() {
        let mut rng = Rng::seed_from_u64(5);
        let ds = synth::mask_task(
            &synth::MaskTaskConfig {
                n: 400,
                feature_noise: 0.2,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![48],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.02,
                weight_decay: 1e-5,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(5),
        );
        // Per-cell accuracy must clearly beat chance.
        let mut correct = 0usize;
        let mut total = 0usize;
        for i in 0..ds.len() {
            let pred = mlp.predict_mask(ds.x(i));
            for (p, y) in pred.iter().zip(ds.mask(i)) {
                if (*p > 0.5) == (*y > 0.5) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "mask cell accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let mut rng = Rng::seed_from_u64(6);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let cfg = MlpConfig::default();
        let tc = TrainConfig {
            epochs: 3,
            dropout: 0.2,
            ..Default::default()
        };
        let a = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(7));
        let b = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(7));
        assert_eq!(a, b, "same seeds must give bit-identical models");
    }

    #[test]
    fn each_seed_stream_changes_the_outcome() {
        let mut rng = Rng::seed_from_u64(8);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let cfg = MlpConfig::default();
        let tc = TrainConfig {
            epochs: 3,
            dropout: 0.2,
            ..Default::default()
        };
        let base = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(9));
        // Vary exactly one stream at a time.
        for (label, which) in [("init", 0), ("order", 1), ("dropout", 2), ("augment", 3)] {
            let tree = SeedTree::new(9);
            let other = SeedTree::new(10_000);
            let mut s = TrainSeeds::from_tree(&tree);
            match which {
                0 => s.init = other.rng("weights_init"),
                1 => s.order = other.rng("data_order"),
                2 => s.dropout = other.rng("dropout"),
                3 => s.augment = other.rng("data_augment"),
                _ => unreachable!(),
            }
            let variant = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut s);
            assert_ne!(
                base, variant,
                "varying the {label} seed must change the model"
            );
        }
    }

    #[test]
    fn grad_noise_breaks_determinism_across_noise_seeds() {
        let mut rng = Rng::seed_from_u64(11);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let tc = TrainConfig {
            epochs: 2,
            grad_noise: 1e-4,
            ..Default::default()
        };
        let base = Mlp::train(&MlpConfig::default(), &tc, &ds, &Identity, &mut seeds(12));
        let mut s = seeds(12);
        s.noise = SeedTree::new(999).rng("numerical_noise");
        let variant = Mlp::train(&MlpConfig::default(), &tc, &ds, &Identity, &mut s);
        assert_ne!(base, variant);
    }

    #[test]
    fn linear_model_with_empty_hidden() {
        let mut rng = Rng::seed_from_u64(13);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 4.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(14),
        );
        assert!(accuracy_of(&mlp, &ds) > 0.9);
    }

    #[test]
    fn proba_sums_to_one() {
        let mut rng = Rng::seed_from_u64(15);
        let ds = synth::gaussian_mixture(&GaussianMixtureConfig::default(), &mut rng);
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(16),
        );
        let p = mlp.predict_proba(ds.x(0));
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "dropout must be in [0,1)")]
    fn invalid_dropout_rejected() {
        let mut rng = Rng::seed_from_u64(17);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                dropout: 1.0,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(18),
        );
    }
}
