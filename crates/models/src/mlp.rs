//! Multilayer perceptron with explicitly seeded training stochasticity.

use crate::init::Init;
use varbench_data::augment::Augment;
use varbench_data::{Dataset, Targets};
use varbench_linalg::{
    compact_nonzero, gemm_col_nz_into, gemm_rows_into, gemm_transb_into, matvec_cols_init,
    matvec_rows_init, vecmat_nz_into,
};
use varbench_rng::{Rng, SeedTree};

/// Output head of an [`Mlp`], selected from the dataset's target kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Head {
    /// Softmax + cross-entropy over `num_classes` logits (classification).
    Softmax,
    /// Independent sigmoid + binary cross-entropy per output (dense masks).
    SigmoidBce,
    /// Linear output + squared error (regression).
    Mse,
}

/// Architecture of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (empty = linear model).
    pub hidden: Vec<usize>,
    /// Weight initialization scheme.
    pub init: Init,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32],
            init: Init::GlorotUniform,
        }
    }
}

/// Optimization hyperparameters — the λ of the paper's Eq. 1, mirroring the
/// search dimensions of its Tables 2/3/5/6 (learning rate, weight decay,
/// momentum, exponential LR-decay γ, dropout, init std via [`MlpConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Per-epoch exponential learning-rate decay factor (the γ of the
    /// paper's Table 2 LR schedule).
    pub lr_gamma: f64,
    /// Dropout probability on hidden activations (0 disables).
    pub dropout: f64,
    /// Standard deviation of synthetic gradient noise, relative to the
    /// learning-rate-scaled update. Models the paper's "numerical noise"
    /// source (GPU nondeterminism) which a pure-Rust pipeline does not
    /// otherwise have; 0 disables (bit-deterministic training).
    pub grad_noise: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_gamma: 0.99,
            dropout: 0.0,
            grad_noise: 0.0,
        }
    }
}

/// One independent RNG stream per training variance source (ξ_O).
///
/// This is the paper's Appendix A seeding discipline made structural: each
/// source can be fixed or randomized independently of the others.
#[derive(Debug, Clone)]
pub struct TrainSeeds {
    /// Weight initialization stream.
    pub init: Rng,
    /// Data visit-order (shuffling) stream.
    pub order: Rng,
    /// Dropout mask stream.
    pub dropout: Rng,
    /// Data augmentation stream.
    pub augment: Rng,
    /// Synthetic numerical-noise stream.
    pub noise: Rng,
}

impl TrainSeeds {
    /// Standard labels used when deriving the five streams from a
    /// [`SeedTree`].
    pub const LABELS: [&'static str; 5] = [
        "weights_init",
        "data_order",
        "dropout",
        "data_augment",
        "numerical_noise",
    ];

    /// Derives all five streams from a seed tree using the standard labels.
    pub fn from_tree(tree: &SeedTree) -> Self {
        Self {
            init: tree.rng("weights_init"),
            order: tree.rng("data_order"),
            dropout: tree.rng("dropout"),
            augment: tree.rng("data_augment"),
            noise: tree.rng("numerical_noise"),
        }
    }
}

/// Output-row count at which the transposed forward kernel wins over the
/// row-major one. The choice depends only on the layer shape (never on
/// data), and both kernels accumulate each output element in the same
/// ascending-k order, so it cannot affect results — only speed.
const COLS_KERNEL_MIN_OUT: usize = 8;

#[derive(Debug, Clone, PartialEq)]
struct Dense {
    /// Canonical weights, out_dim × in_dim row-major — the layout backprop
    /// streams (one contiguous row per output's gradient/delta axpy).
    w: Vec<f64>,
    /// Transposed copy (in_dim × out_dim) for the forward pass: the inner
    /// loop runs contiguously over outputs and autovectorizes. Kept in
    /// sync with `w` by [`Dense::sync_wt`] after every optimizer step.
    wt: Vec<f64>,
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng) -> Self {
        // Draw order is positional in the row-major layout (weight (o, k)
        // is draw number o·in_dim + k) — the transposed copy is derived
        // afterwards so seeded initialization is unchanged.
        let w: Vec<f64> = (0..in_dim * out_dim)
            .map(|_| init.sample(in_dim, out_dim, rng))
            .collect();
        let mut layer = Self {
            w,
            wt: vec![0.0; in_dim * out_dim],
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
        };
        layer.sync_wt();
        layer
    }

    /// Rebuilds the transposed weight copy from the canonical row-major
    /// weights (called once per optimizer step; O(weights), trivially
    /// cheap next to the per-example work of a batch).
    fn sync_wt(&mut self) {
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            for (k, &v) in row.iter().enumerate() {
                self.wt[k * self.out_dim + o] = v;
            }
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        // Both kernels overwrite every output element, so a correctly
        // sized buffer (the steady state in inference loops) needs no
        // refill.
        if out.len() != self.out_dim {
            out.clear();
            out.resize(self.out_dim, 0.0);
        }
        self.forward_into(x, out);
    }

    /// The single kernel-dispatch point for this layer's forward pass —
    /// training and inference both route here, so the row/column kernel
    /// choice can never drift between the two (a bit-identity hazard,
    /// not just duplication).
    fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        if self.out_dim >= COLS_KERNEL_MIN_OUT {
            matvec_cols_init(&self.wt, &self.b, x, out);
        } else {
            matvec_rows_init(&self.w, &self.b, x, out);
        }
    }

    /// Batched forward over example-major slabs (`x` is `n × in_dim`,
    /// `out` is `n × out_dim`): the training hot path. Dispatches on the
    /// same shape threshold as [`Dense::forward_into`], and the batch
    /// GEMM kernels are golden-tested bit-identical per element to the
    /// per-example kernels, so training and inference cannot drift.
    fn forward_batch_into(&self, x: &[f64], out: &mut [f64]) {
        if self.out_dim >= COLS_KERNEL_MIN_OUT {
            gemm_rows_into(x, &self.wt, &self.b, self.out_dim, out);
        } else {
            gemm_transb_into(x, &self.w, &self.b, self.out_dim, out);
        }
    }
}

/// A trained multilayer perceptron.
///
/// Construct with [`Mlp::train`]; prediction methods run the network
/// without dropout. See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    head: Head,
    in_dim: usize,
    out_dim: usize,
}

/// Preallocated training scratch: every buffer `train_batch` touches.
///
/// Built once per [`Mlp::train`] call, before the epoch loop; after that
/// warm-up the epoch loop performs **zero heap allocations** — every
/// forward activation, dropout mask, backprop delta, gradient accumulator
/// and momentum buffer lives here and is reused in place (verified by the
/// allocation-count test in `tests/alloc_count.rs`).
struct TrainWorkspace {
    /// Staged (augmented) inputs, `batch × in_dim` example-major.
    xb: Vec<f64>,
    /// Post-activation outputs per layer, each `batch × width`
    /// example-major (`ab[l]` is what layer `l` produced for every example
    /// of the current batch, after ReLU/dropout for hidden layers).
    ab: Vec<Vec<f64>>,
    /// Backpropagated deltas at each layer's output, `batch × width`.
    /// The gradient pass reads them strided, straight from this
    /// example-major layout — no transposed copy exists.
    db: Vec<Vec<f64>>,
    /// Dropout keep-masks per hidden layer, `batch × width` example-major
    /// — drawn for the whole batch in one tight pass (see `train_batch`)
    /// because interleaving RNG draws with the forward kernels spills the
    /// generator state on every burst.
    masks: Vec<Vec<f64>>,
    /// Gradient accumulators (same shapes as weights/biases).
    gw: Vec<Vec<f64>>,
    gb: Vec<Vec<f64>>,
    /// Momentum buffers.
    vw: Vec<Vec<f64>>,
    vb: Vec<Vec<f64>>,
    /// Scratch for the branch-free non-zero compactions in backprop
    /// (sized to `max(batch, widest layer)`).
    nz: Vec<usize>,
    /// Per-output non-zero example lists for the gradient pass, filled
    /// while the delta transpose already touches every element (row `o`
    /// occupies `nzs[o·batch..]`, `nnzs[o]` entries) — compacting in a
    /// separate pass would re-walk the whole `batch × width` slab.
    nzs: Vec<usize>,
    /// Lengths of the `nzs` rows.
    nnzs: Vec<usize>,
}

impl Mlp {
    /// Trains an MLP on `dataset` with the given architecture, optimizer
    /// settings, augmentation, and per-source seed streams.
    ///
    /// The output head is selected from the dataset's target kind:
    /// labels → softmax, masks → per-cell sigmoid BCE, values → MSE.
    ///
    /// Fully deterministic given `seeds` (when `grad_noise == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or a config value is out of range
    /// (e.g. dropout outside `[0, 1)`, non-positive batch size / epochs /
    /// learning rate).
    pub fn train(
        config: &MlpConfig,
        train: &TrainConfig,
        dataset: &Dataset,
        augment: &dyn Augment,
        seeds: &mut TrainSeeds,
    ) -> Mlp {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert!(train.epochs > 0, "epochs must be > 0");
        assert!(train.batch_size > 0, "batch_size must be > 0");
        assert!(train.learning_rate > 0.0, "learning_rate must be > 0");
        assert!(
            (0.0..1.0).contains(&train.dropout),
            "dropout must be in [0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&train.momentum),
            "momentum must be in [0,1]"
        );
        assert!(train.weight_decay >= 0.0, "weight_decay must be >= 0");
        assert!(
            train.lr_gamma > 0.0 && train.lr_gamma <= 1.0,
            "lr_gamma in (0,1]"
        );
        assert!(train.grad_noise >= 0.0, "grad_noise must be >= 0");

        let (head, out_dim) = match dataset.targets() {
            Targets::Labels { num_classes, .. } => (Head::Softmax, *num_classes),
            Targets::Masks { mask_len, .. } => (Head::SigmoidBce, *mask_len),
            Targets::Values(_) => (Head::Mse, 1),
        };

        // Build layers.
        let mut dims = vec![dataset.dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(out_dim);
        let layers: Vec<Dense> = dims
            .windows(2)
            .map(|d| Dense::new(d[0], d[1], config.init, &mut seeds.init))
            .collect();

        let mut model = Mlp {
            layers,
            head,
            in_dim: dataset.dim(),
            out_dim,
        };

        let b = train.batch_size.min(dataset.len());
        let widest = dims[1..].iter().copied().max().unwrap_or(0);
        let mut ws = TrainWorkspace {
            xb: vec![0.0; b * dataset.dim()],
            ab: dims[1..].iter().map(|&d| vec![0.0; d * b]).collect(),
            db: dims[1..].iter().map(|&d| vec![0.0; d * b]).collect(),
            // Without dropout the masks are never read — skip the
            // allocation entirely (one of the larger setup buffers).
            masks: if train.dropout > 0.0 {
                dims[1..dims.len() - 1]
                    .iter()
                    .map(|&d| vec![1.0; d * b])
                    .collect()
            } else {
                Vec::new()
            },
            gw: model.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            gb: model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            vw: model.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            vb: model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            nz: vec![0; widest.max(b)],
            nzs: vec![0; widest * b],
            nnzs: vec![0; widest],
        };

        let n = dataset.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut lr = train.learning_rate;

        for _epoch in 0..train.epochs {
            seeds.order.shuffle(&mut order);
            for batch in order.chunks(train.batch_size) {
                model.train_batch(batch, dataset, augment, train, lr, &mut ws, seeds);
            }
            lr *= train.lr_gamma;
        }
        model
    }

    // lint: no-alloc
    #[allow(clippy::too_many_arguments)]
    fn train_batch(
        &mut self,
        batch: &[usize],
        dataset: &Dataset,
        augment: &dyn Augment,
        train: &TrainConfig,
        lr: f64,
        ws: &mut TrainWorkspace,
        seeds: &mut TrainSeeds,
    ) {
        // (No gradient zeroing pass: the batched gradient kernel below
        // overwrites every gw row and gb entry each batch.)
        // A no-op augmentation (the common case) draws nothing from the
        // RNG, so skipping the virtual call per example is stream-exact.
        let aug_noop = augment.is_noop();

        // Draw every dropout mask for the batch in one tight pass. The
        // draw order (per example, then per hidden layer, then per unit)
        // is exactly the order the per-example loop consumed the stream
        // in, so the masks are draw-for-draw identical — but the RNG
        // state stays in registers here instead of spilling on every
        // 16-draw burst between forward kernels (~5x faster per draw).
        if train.dropout > 0.0 {
            let keep = 1.0 - train.dropout;
            let inv_keep = 1.0 / keep;
            let n_hidden = self.layers.len() - 1;
            for s in 0..batch.len() {
                for l in 0..n_hidden {
                    let d = self.layers[l].out_dim;
                    for m in ws.masks[l][s * d..(s + 1) * d].iter_mut() {
                        *m = if seeds.dropout.next_f64() < keep {
                            inv_keep
                        } else {
                            0.0
                        };
                    }
                }
            }
        }

        let b = batch.len();
        let nl = self.layers.len();

        // Stage (and augment) every input row for the batch — the augment
        // stream is consumed in example order, exactly as the per-example
        // loop consumed it.
        let in_dim = self.in_dim;
        for (si, &i) in batch.iter().enumerate() {
            let row = &mut ws.xb[si * in_dim..(si + 1) * in_dim];
            row.copy_from_slice(dataset.x(i));
            if !aug_noop {
                augment.augment(row, &mut seeds.augment);
            }
        }

        // Forward, layer-major over the whole batch through the true
        // batch-GEMM kernels: four example rows advance together, sharing
        // every weight load. Each example's chain of per-element
        // operations is untouched — batching only reorders work across
        // *independent* examples — so every activation is bit-identical
        // to the example-at-a-time loop (pinned by the golden tests in
        // `crates/linalg/tests/kernel_identity.rs`).
        for l in 0..nl {
            let layer = &self.layers[l];
            let (d_in, d_out) = (layer.in_dim, layer.out_dim);
            let (ab_lo, ab_hi) = ws.ab.split_at_mut(l);
            let input: &[f64] = if l == 0 {
                &ws.xb[..b * d_in]
            } else {
                &ab_lo[l - 1][..b * d_in]
            };
            let out_all = &mut ab_hi[0];
            layer.forward_batch_into(input, &mut out_all[..b * d_out]);
            if l < nl - 1 {
                // ReLU in select form over the whole batch slab: one
                // branch-free vector pass (ReLU sign patterns are
                // data-dependent and would mispredict as branches).
                // `-0.0` inputs keep their bits, like the seed's `< 0.0`
                // branch.
                let slab = &mut out_all[..b * d_out];
                for a in slab.iter_mut() {
                    *a = if *a < 0.0 { 0.0 } else { *a };
                }
                // Inverted dropout: the batch-drawn masks share the slab's
                // example-major layout, so this is one contiguous pass.
                if train.dropout > 0.0 {
                    for (a, &m) in slab.iter_mut().zip(&ws.masks[l][..b * d_out]) {
                        *a *= m;
                    }
                }
            }
        }

        // Output deltas dLoss/dLogits, one row per example.
        let last = nl - 1;
        let d_last = self.out_dim;
        for (si, &i) in batch.iter().enumerate() {
            let out = &ws.ab[last][si * d_last..(si + 1) * d_last];
            let delta = &mut ws.db[last][si * d_last..(si + 1) * d_last];
            match self.head {
                Head::Softmax => {
                    softmax_row(out, delta);
                    delta[dataset.label(i)] -= 1.0;
                }
                Head::SigmoidBce => {
                    for ((dst, z), y) in delta.iter_mut().zip(out).zip(dataset.mask(i)) {
                        *dst = 1.0 / (1.0 + (-z).exp()) - y;
                    }
                }
                Head::Mse => delta[0] = out[0] - dataset.value(i),
            }
        }

        // Backward, layer-major. ReLU gating makes the zero patterns of
        // the deltas irregular, so `if d != 0.0` branches inside row loops
        // mispredict badly; every skip below is driven by a branch-free
        // index compaction instead (`nnz` advances by a bool cast, never
        // a jump). The skips themselves are load-bearing for bit-identity:
        // a diverged training can hold ∞ activations, and 0·∞ would poison
        // the gradient with NaN where the seed code skipped the term.
        for l in (0..nl).rev() {
            let layer = &self.layers[l];
            let (d_in, d_out) = (layer.in_dim, layer.out_dim);
            // Compact each output column's non-zero example list in one
            // branch-free sweep (the cursor advances by a bool cast,
            // never a jump). Walking output-major keeps the cursor in a
            // register; the strided reads hit the L1-resident slab.
            let db_l = &ws.db[l];
            for o in 0..d_out {
                let nzrow = &mut ws.nzs[o * b..(o + 1) * b];
                let mut c = 0;
                for si in 0..b {
                    nzrow[c] = si;
                    c += usize::from(db_l[si * d_out + o] != 0.0);
                }
                ws.nnzs[o] = c;
            }
            // Gradients for layer l: gw[o] = Σ_examples delta[o] ⊗ act,
            // one `gemm_col_nz_into` call per output row, reading the
            // deltas strided straight from the example-major slab (no
            // transposed copy) with the gradient row held in registers
            // across the whole batch — instead of paying a gw load/store
            // per contributing example (the axpy formulation's cost).
            // Per element the accumulation is still ascending-example
            // with zero deltas skipped — exactly the order (and the
            // adds) of the example-at-a-time loop.
            let act: &[f64] = if l == 0 { &ws.xb } else { &ws.ab[l - 1] };
            let gw = &mut ws.gw[l];
            let gb = &mut ws.gb[l];
            for o in 0..d_out {
                let idx = &ws.nzs[o * b..o * b + ws.nnzs[o]];
                gb[o] = gemm_col_nz_into(
                    db_l,
                    d_out,
                    o,
                    idx,
                    act,
                    d_in,
                    &mut gw[o * d_in..(o + 1) * d_in],
                );
            }
            // Delta for the layer below (if any): Wᵀ delta per example,
            // gated by ReLU' and the dropout mask.
            if l > 0 {
                let (db_lo, db_hi) = ws.db.split_at_mut(l);
                let below_all = &mut db_lo[l - 1];
                let delta_all = &db_hi[0][..b * d_out];
                let act_below = &ws.ab[l - 1];
                // Wᵀ·delta without materializing the transpose. The
                // zero-delta skip exists because 0·∞ would poison a
                // diverged gradient with NaN (and an explicit +0.0 term
                // can flip a -0.0 partial sum) — but when the slab holds
                // no exact zero there is nothing to skip, and the dense
                // batch GEMM produces the same ascending-delta adds.
                // Top-layer deltas (softmax/sigmoid/MSE residuals) are
                // zero-free outside saturation, so the batched kernel is
                // the common case; ReLU-gated hidden deltas take the
                // per-example sparse path. The dispatch reads only data
                // whose zero pattern already decides which terms exist,
                // so it can never change a value.
                let any_zero = delta_all.iter().fold(false, |z, &d| z | (d == 0.0));
                if !any_zero {
                    // layer.w is `d_out × d_in` row-major, which is
                    // exactly the input-major layout gemm_rows_into
                    // streams: below = Δ · W.
                    gemm_rows_into(delta_all, &layer.w, &[], d_in, &mut below_all[..b * d_in]);
                }
                for si in 0..b {
                    let delta = &delta_all[si * d_out..(si + 1) * d_out];
                    let below = &mut below_all[si * d_in..(si + 1) * d_in];
                    if any_zero {
                        let nnz = compact_nonzero(delta, &mut ws.nz);
                        vecmat_nz_into(delta, &ws.nz[..nnz], &layer.w, d_in, below);
                    }
                    let arow = &act_below[si * d_in..(si + 1) * d_in];
                    // ReLU'/dropout gate in select form (branch-free; the
                    // selected values are exactly what the branchy version
                    // produced). `arow` already includes the dropout mask,
                    // so a dropped unit has activation 0 and passes no
                    // gradient.
                    if train.dropout > 0.0 {
                        let mrow = &ws.masks[l - 1][si * d_in..(si + 1) * d_in];
                        for ((bv, &a), &m) in below.iter_mut().zip(arow).zip(mrow) {
                            *bv = if a <= 0.0 { 0.0 } else { *bv * m };
                        }
                    } else {
                        for (bv, &a) in below.iter_mut().zip(arow) {
                            *bv = if a <= 0.0 { 0.0 } else { *bv };
                        }
                    }
                }
            }
        }

        // SGD update with momentum, weight decay, and optional noise. The
        // noise branch is hoisted out of the elementwise loops so the
        // (common) noiseless path autovectorizes; per-element arithmetic
        // and the noise-draw order match the seed loop exactly.
        let scale = 1.0 / batch.len() as f64;
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let (gw, vw) = (&ws.gw[l], &mut ws.vw[l]);
            if train.grad_noise > 0.0 {
                for ((w, &g0), v) in layer.w.iter_mut().zip(gw).zip(vw.iter_mut()) {
                    let mut g = g0 * scale + train.weight_decay * *w;
                    g += seeds.noise.normal(0.0, train.grad_noise);
                    let vn = train.momentum * *v - lr * g;
                    *v = vn;
                    *w += vn;
                }
            } else {
                for ((w, &g0), v) in layer.w.iter_mut().zip(gw).zip(vw.iter_mut()) {
                    let g = g0 * scale + train.weight_decay * *w;
                    let vn = train.momentum * *v - lr * g;
                    *v = vn;
                    *w += vn;
                }
            }
            let (gb, vb) = (&ws.gb[l], &mut ws.vb[l]);
            if train.grad_noise > 0.0 {
                for ((b, &g0), v) in layer.b.iter_mut().zip(gb).zip(vb.iter_mut()) {
                    let mut g = g0 * scale;
                    g += seeds.noise.normal(0.0, train.grad_noise);
                    let vn = train.momentum * *v - lr * g;
                    *v = vn;
                    *b += vn;
                }
            } else {
                for ((b, &g0), v) in layer.b.iter_mut().zip(gb).zip(vb.iter_mut()) {
                    let g = g0 * scale;
                    let vn = train.momentum * *v - lr * g;
                    *v = vn;
                    *b += vn;
                }
            }
            layer.sync_wt();
        }
    }

    /// The output head.
    pub fn head(&self) -> Head {
        self.head
    }

    /// L2 norm of all connection weights (biases excluded) — a diagnostic
    /// for regularization studies.
    pub fn weight_norm(&self) -> f64 {
        self.layers
            .iter()
            .flat_map(|l| l.w.iter())
            .map(|w| w * w)
            .sum::<f64>()
            .sqrt()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Raw output logits for input `x` (no dropout).
    ///
    /// Allocates fresh buffers per call; evaluation loops should prefer
    /// [`Mlp::logits_into`] with a reused [`PredictBuffer`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        let mut buf = PredictBuffer::new();
        self.logits_into(x, &mut buf);
        buf.cur
    }

    /// Raw output logits for input `x` (no dropout), computed into a
    /// caller-provided scratch buffer — zero heap allocations once the
    /// buffer is warm. Returns the logits slice borrowed from the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn logits_into<'a>(&self, x: &[f64], buf: &'a mut PredictBuffer) -> &'a [f64] {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        buf.cur.clear();
        buf.cur.extend_from_slice(x);
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&buf.cur, &mut buf.next);
            if l < self.layers.len() - 1 {
                for a in buf.next.iter_mut() {
                    if *a < 0.0 {
                        *a = 0.0;
                    }
                }
            }
            std::mem::swap(&mut buf.cur, &mut buf.next);
        }
        &buf.cur
    }

    /// Predicted class (argmax of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.predict_class_with(x, &mut PredictBuffer::new())
    }

    /// [`Mlp::predict_class`] with a reused scratch buffer (no
    /// allocation once warm) — the evaluation hot path.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_class_with(&self, x: &[f64], buf: &mut PredictBuffer) -> usize {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_class requires a softmax head"
        );
        argmax(self.logits_into(x, buf))
    }

    /// Class probabilities (softmax of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_proba requires a softmax head"
        );
        let logits = self.logits(x);
        let mut out = Vec::with_capacity(logits.len());
        softmax_into(&logits, &mut out);
        out
    }

    /// Per-cell mask probabilities (sigmoid of logits).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::SigmoidBce`].
    pub fn predict_mask(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_mask_into(x, &mut PredictBuffer::new(), &mut out);
        out
    }

    /// [`Mlp::predict_mask`] into reused scratch and output buffers (no
    /// allocation once warm).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::SigmoidBce`].
    pub fn predict_mask_into(&self, x: &[f64], buf: &mut PredictBuffer, out: &mut Vec<f64>) {
        assert_eq!(
            self.head,
            Head::SigmoidBce,
            "predict_mask requires a sigmoid head"
        );
        let logits = self.logits_into(x, buf);
        out.clear();
        out.extend(logits.iter().map(|z| 1.0 / (1.0 + (-z).exp())));
    }

    /// Regression prediction.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Mse`].
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.predict_value_with(x, &mut PredictBuffer::new())
    }

    /// [`Mlp::predict_value`] with a reused scratch buffer (no allocation
    /// once warm).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Mse`].
    pub fn predict_value_with(&self, x: &[f64], buf: &mut PredictBuffer) -> f64 {
        assert_eq!(self.head, Head::Mse, "predict_value requires an MSE head");
        self.logits_into(x, buf)[0]
    }

    /// [`Mlp::predict_proba`] into reused scratch and output buffers (no
    /// allocation once warm).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`].
    pub fn predict_proba_into(&self, x: &[f64], buf: &mut PredictBuffer, out: &mut Vec<f64>) {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_proba requires a softmax head"
        );
        let logits = self.logits_into(x, buf);
        softmax_into(logits, out);
    }

    /// Batched forward pass over `n` input rows: the inference analog of
    /// the training slab loop. `stage(si, row)` fills input row `si`
    /// (length `in_dim`); rows then advance through the network layer by
    /// layer via the same batch-GEMM kernels training uses
    /// ([`gemm_rows_into`] / [`gemm_transb_into`] above the
    /// `COLS_KERNEL_MIN_OUT` shape threshold, per-example matvec tails
    /// below it). Returns the `n × out_dim` logit slab borrowed from the
    /// workspace.
    ///
    /// Per output element the accumulation order is exactly that of
    /// [`Mlp::logits_into`] — batching only interleaves *independent*
    /// example chains — so every logit is bit-identical to the
    /// example-at-a-time path (pinned by `tests/batch_identity.rs`).
    /// Allocation-free once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    // lint: no-alloc
    pub fn logits_batch_into<'a>(
        &self,
        n: usize,
        mut stage: impl FnMut(usize, &mut [f64]),
        ws: &'a mut EvalWorkspace,
    ) -> &'a [f64] {
        assert!(n > 0, "cannot run a batched forward over zero examples");
        let in_dim = self.in_dim;
        ws.xb.resize(n * in_dim, 0.0);
        for si in 0..n {
            stage(si, &mut ws.xb[si * in_dim..(si + 1) * in_dim]);
        }
        let nl = self.layers.len();
        for (l, layer) in self.layers.iter().enumerate() {
            let (d_in, d_out) = (layer.in_dim, layer.out_dim);
            ws.next.resize(n * d_out, 0.0);
            let input: &[f64] = if l == 0 {
                &ws.xb[..n * d_in]
            } else {
                &ws.cur[..n * d_in]
            };
            layer.forward_batch_into(input, &mut ws.next[..n * d_out]);
            if l < nl - 1 {
                // ReLU in select form over the whole slab — bit-identical
                // to the per-example branch form (see `train_batch`).
                for a in ws.next[..n * d_out].iter_mut() {
                    *a = if *a < 0.0 { 0.0 } else { *a };
                }
            }
            std::mem::swap(&mut ws.cur, &mut ws.next);
        }
        &ws.cur[..n * self.out_dim]
    }

    /// Batched [`Mlp::predict_class_with`]: argmax per logit row of a
    /// [`Mlp::logits_batch_into`] pass, written into `out` (resized to
    /// `n`). Allocation-free once buffers are warm.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`] or `n == 0`.
    // lint: no-alloc
    pub fn predict_classes_batch_into(
        &self,
        n: usize,
        stage: impl FnMut(usize, &mut [f64]),
        ws: &mut EvalWorkspace,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_class requires a softmax head"
        );
        out.clear();
        out.resize(n, 0);
        let m = self.out_dim;
        let logits = self.logits_batch_into(n, stage, ws);
        for (si, slot) in out.iter_mut().enumerate() {
            *slot = argmax(&logits[si * m..(si + 1) * m]);
        }
    }

    /// Batched [`Mlp::predict_value_with`]: one regression output per
    /// row, written into `out` (resized to `n`). Allocation-free once
    /// buffers are warm.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Mse`] or `n == 0`.
    // lint: no-alloc
    pub fn predict_values_batch_into(
        &self,
        n: usize,
        stage: impl FnMut(usize, &mut [f64]),
        ws: &mut EvalWorkspace,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(self.head, Head::Mse, "predict_value requires an MSE head");
        out.clear();
        out.resize(n, 0.0);
        let m = self.out_dim;
        let logits = self.logits_batch_into(n, stage, ws);
        for (si, slot) in out.iter_mut().enumerate() {
            *slot = logits[si * m];
        }
    }

    /// Batched [`Mlp::predict_mask_into`]: sigmoid over every logit of a
    /// batched forward pass. Returns the `n × out_dim` probability slab
    /// borrowed from the workspace (row `si` is example `si`'s mask).
    /// Allocation-free once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::SigmoidBce`] or `n == 0`.
    // lint: no-alloc
    pub fn predict_masks_batch_into<'a>(
        &self,
        n: usize,
        stage: impl FnMut(usize, &mut [f64]),
        ws: &'a mut EvalWorkspace,
    ) -> &'a [f64] {
        assert_eq!(
            self.head,
            Head::SigmoidBce,
            "predict_mask requires a sigmoid head"
        );
        self.logits_batch_into(n, stage, ws);
        let len = n * self.out_dim;
        ws.out.resize(len, 0.0);
        // Same per-element expression as `predict_mask_into`, in the same
        // ascending order.
        for (p, z) in ws.out[..len].iter_mut().zip(&ws.cur[..len]) {
            *p = 1.0 / (1.0 + (-z).exp());
        }
        &ws.out[..len]
    }

    /// Batched [`Mlp::predict_proba`]: softmax per logit row of a batched
    /// forward pass. Returns the `n × out_dim` probability slab borrowed
    /// from the workspace. Allocation-free once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`Head::Softmax`] or `n == 0`.
    // lint: no-alloc
    pub fn predict_proba_batch_into<'a>(
        &self,
        n: usize,
        stage: impl FnMut(usize, &mut [f64]),
        ws: &'a mut EvalWorkspace,
    ) -> &'a [f64] {
        assert_eq!(
            self.head,
            Head::Softmax,
            "predict_proba requires a softmax head"
        );
        self.logits_batch_into(n, stage, ws);
        let m = self.out_dim;
        ws.out.resize(n * m, 0.0);
        softmax_rows(&ws.cur[..n * m], m, &mut ws.out[..n * m]);
        &ws.out[..n * m]
    }
}

/// Reusable inference scratch for the `Mlp::*_with` prediction methods.
///
/// Holds the two ping-pong activation buffers a forward pass needs; after
/// the first prediction both have reached the network's maximum layer
/// width and every further call is allocation-free. Create one per
/// evaluation loop (or per worker thread) and pass it to
/// [`Mlp::predict_class_with`] / [`Mlp::predict_mask_into`] /
/// [`Mlp::predict_value_with`] / [`Mlp::logits_into`].
#[derive(Debug, Clone, Default)]
pub struct PredictBuffer {
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl PredictBuffer {
    /// Creates an empty buffer (it warms up on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable batched-inference scratch for the `Mlp::*_batch_into`
/// prediction methods: staged input rows plus the ping-pong activation
/// slabs and head-output slab a batched forward pass needs.
///
/// Buffers grow to the largest `n × width` seen and are then reused in
/// place, so after the first batch every further call is allocation-free
/// (verified by the allocation-count test in
/// `tests/alloc_count_eval.rs`). Create one per evaluation loop (or per
/// worker thread) and pass it to [`Mlp::logits_batch_into`] /
/// [`Mlp::predict_classes_batch_into`] / [`Mlp::predict_masks_batch_into`]
/// / [`Mlp::predict_values_batch_into`] / [`Mlp::predict_proba_batch_into`].
#[derive(Debug, Clone, Default)]
pub struct EvalWorkspace {
    /// Staged input rows, `n × in_dim` example-major.
    xb: Vec<f64>,
    /// Ping-pong activation slabs (`n × width` each).
    cur: Vec<f64>,
    next: Vec<f64>,
    /// Head outputs (softmax / sigmoid probabilities), `n × out_dim`.
    out: Vec<f64>,
}

impl EvalWorkspace {
    /// Creates an empty workspace (it warms up on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

fn softmax_into(logits: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(logits.len(), 0.0);
    softmax_row(logits, out);
}

/// Softmax into an equal-length slice: max-shift, exponentiate, normalize
/// — each pass in ascending index order (the op sequence of the seed
/// implementation, so results are bit-identical).
fn softmax_row(logits: &[f64], out: &mut [f64]) {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for (p, z) in out.iter_mut().zip(logits) {
        *p = (z - max).exp();
    }
    let total: f64 = out.iter().sum();
    for p in out.iter_mut() {
        *p /= total;
    }
}

/// Softmax over `m`-wide rows: [`softmax_row`] applied per row, so each
/// row's max-shift / exponentiate / normalize passes run in exactly the
/// per-example order (bit-identical to calling [`softmax_row`] yourself).
// lint: no-alloc
fn softmax_rows(logits: &[f64], m: usize, out: &mut [f64]) {
    for (lrow, orow) in logits.chunks_exact(m).zip(out.chunks_exact_mut(m)) {
        softmax_row(lrow, orow);
    }
}

pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_data::augment::{GaussianJitter, Identity};
    use varbench_data::synth::{self, BinaryOverlapConfig, GaussianMixtureConfig};

    fn seeds(root: u64) -> TrainSeeds {
        TrainSeeds::from_tree(&SeedTree::new(root))
    }

    fn accuracy_of(mlp: &Mlp, ds: &Dataset) -> f64 {
        let correct = (0..ds.len())
            .filter(|&i| mlp.predict_class(ds.x(i)) == ds.label(i))
            .count();
        correct as f64 / ds.len() as f64
    }

    #[test]
    fn learns_linearly_separable_task() {
        let mut rng = Rng::seed_from_u64(1);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 5.0,
                n: 400,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 15,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(1),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        // XOR is not linearly separable; a hidden layer must solve it.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..400 {
            let a = rng.bernoulli(0.5);
            let b = rng.bernoulli(0.5);
            features.push(if a { 1.0 } else { -1.0 } + rng.normal(0.0, 0.1));
            features.push(if b { 1.0 } else { -1.0 } + rng.normal(0.0, 0.1));
            labels.push(usize::from(a != b));
        }
        let ds = Dataset::new(
            features,
            2,
            Targets::Labels {
                labels,
                num_classes: 2,
            },
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![16],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.1,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(2),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn multiclass_mixture_learnable() {
        let mut rng = Rng::seed_from_u64(3);
        let ds = synth::gaussian_mixture(
            &GaussianMixtureConfig {
                num_classes: 5,
                n_per_class: 80,
                class_sep: 5.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(3),
        );
        let acc = accuracy_of(&mlp, &ds);
        assert!(acc > 0.9, "5-class accuracy {acc}");
    }

    #[test]
    fn regression_fits_values() {
        let mut rng = Rng::seed_from_u64(4);
        // y = sigmoid(2 x0): smooth monotone target.
        let mut features = Vec::new();
        let mut values = Vec::new();
        for _ in 0..500 {
            let x = rng.normal(0.0, 1.0);
            features.push(x);
            values.push(1.0 / (1.0 + (-2.0 * x).exp()));
        }
        let ds = Dataset::new(features, 1, Targets::Values(values));
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![16],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(4),
        );
        let mse: f64 = (0..ds.len())
            .map(|i| (mlp.predict_value(ds.x(i)) - ds.value(i)).powi(2))
            .sum::<f64>()
            / ds.len() as f64;
        assert!(mse < 0.01, "regression MSE {mse}");
    }

    #[test]
    fn mask_head_learns_latent_structure() {
        let mut rng = Rng::seed_from_u64(5);
        let ds = synth::mask_task(
            &synth::MaskTaskConfig {
                n: 400,
                feature_noise: 0.2,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![48],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.02,
                weight_decay: 1e-5,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(5),
        );
        // Per-cell accuracy must clearly beat chance.
        let mut correct = 0usize;
        let mut total = 0usize;
        for i in 0..ds.len() {
            let pred = mlp.predict_mask(ds.x(i));
            for (p, y) in pred.iter().zip(ds.mask(i)) {
                if (*p > 0.5) == (*y > 0.5) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "mask cell accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let mut rng = Rng::seed_from_u64(6);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let cfg = MlpConfig::default();
        let tc = TrainConfig {
            epochs: 3,
            dropout: 0.2,
            ..Default::default()
        };
        let a = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(7));
        let b = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(7));
        assert_eq!(a, b, "same seeds must give bit-identical models");
    }

    #[test]
    fn each_seed_stream_changes_the_outcome() {
        let mut rng = Rng::seed_from_u64(8);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let cfg = MlpConfig::default();
        let tc = TrainConfig {
            epochs: 3,
            dropout: 0.2,
            ..Default::default()
        };
        let base = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut seeds(9));
        // Vary exactly one stream at a time.
        for (label, which) in [("init", 0), ("order", 1), ("dropout", 2), ("augment", 3)] {
            let tree = SeedTree::new(9);
            let other = SeedTree::new(10_000);
            let mut s = TrainSeeds::from_tree(&tree);
            match which {
                0 => s.init = other.rng("weights_init"),
                1 => s.order = other.rng("data_order"),
                2 => s.dropout = other.rng("dropout"),
                3 => s.augment = other.rng("data_augment"),
                _ => unreachable!(),
            }
            let variant = Mlp::train(&cfg, &tc, &ds, &GaussianJitter::new(0.05), &mut s);
            assert_ne!(
                base, variant,
                "varying the {label} seed must change the model"
            );
        }
    }

    #[test]
    fn grad_noise_breaks_determinism_across_noise_seeds() {
        let mut rng = Rng::seed_from_u64(11);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        let tc = TrainConfig {
            epochs: 2,
            grad_noise: 1e-4,
            ..Default::default()
        };
        let base = Mlp::train(&MlpConfig::default(), &tc, &ds, &Identity, &mut seeds(12));
        let mut s = seeds(12);
        s.noise = SeedTree::new(999).rng("numerical_noise");
        let variant = Mlp::train(&MlpConfig::default(), &tc, &ds, &Identity, &mut s);
        assert_ne!(base, variant);
    }

    #[test]
    fn linear_model_with_empty_hidden() {
        let mut rng = Rng::seed_from_u64(13);
        let ds = synth::binary_overlap(
            &BinaryOverlapConfig {
                separation: 4.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mlp = Mlp::train(
            &MlpConfig {
                hidden: vec![],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(14),
        );
        assert!(accuracy_of(&mlp, &ds) > 0.9);
    }

    #[test]
    fn proba_sums_to_one() {
        let mut rng = Rng::seed_from_u64(15);
        let ds = synth::gaussian_mixture(&GaussianMixtureConfig::default(), &mut rng);
        let mlp = Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(16),
        );
        let p = mlp.predict_proba(ds.x(0));
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "dropout must be in [0,1)")]
    fn invalid_dropout_rejected() {
        let mut rng = Rng::seed_from_u64(17);
        let ds = synth::binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        Mlp::train(
            &MlpConfig::default(),
            &TrainConfig {
                dropout: 1.0,
                ..Default::default()
            },
            &ds,
            &Identity,
            &mut seeds(18),
        );
    }
}
