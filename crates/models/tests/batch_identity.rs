//! Golden bitwise tests for the batched inference path: every batched
//! kernel must reproduce its per-example reference loop bit for bit, for
//! every head, across architecture thresholds (hidden widths below and
//! above the 8-output kernel dispatch cut) and batch-size tails (the
//! GEMM kernels block examples four at a time, so sizes straddling the
//! 4-row blocks exercise both the blocked pass and the remainder).
//!
//! This is the eval-path analog of the train-path guarantee in
//! `crates/linalg/tests/kernel_identity.rs`: batching may interleave
//! independent example chains, never reorder the accumulation of a
//! single output element.

use varbench_data::augment::Identity;
use varbench_data::synth::{
    binary_overlap, binding_regression, mask_task, BinaryOverlapConfig, BindingConfig,
    MaskTaskConfig,
};
use varbench_data::{Dataset, Targets};
use varbench_models::ensemble::{EnsembleBuffer, MlpEnsemble};
use varbench_models::linear::{LogisticRegression, RidgeRegression};
use varbench_models::{EvalWorkspace, Mlp, MlpConfig, PredictBuffer, TrainConfig, TrainSeeds};
use varbench_rng::{Rng, SeedTree};

/// Batch sizes straddling the 4-example GEMM blocks and the 64-example
/// evaluation chunk: singletons, a partial block, exact blocks, and
/// block + tail.
const BATCH_SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 63, 64, 65];

fn small_train() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        ..Default::default()
    }
}

/// Draws `n` random pool indices (with replacement, so tails repeat
/// examples — irrelevant for identity, convenient for size control).
fn draw_indices(rng: &mut Rng, pool_len: usize, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.range_usize(pool_len)).collect()
}

#[test]
fn softmax_batched_classes_and_probas_match_per_example_bitwise() {
    let mut data_rng = Rng::seed_from_u64(11);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 120,
            dim: 11,
            separation: 1.5,
            ..Default::default()
        },
        &mut data_rng,
    );
    // Hidden widths straddle the 8-output kernel-dispatch threshold:
    // no hidden layer (2-logit head only), narrow (5 < 8), wide (16 ≥ 8),
    // and a mixed stack with both regimes plus odd widths.
    for hidden in [vec![], vec![5], vec![16], vec![9, 3]] {
        let cfg = MlpConfig {
            hidden: hidden.clone(),
            ..Default::default()
        };
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(21));
        let mlp = Mlp::train(&cfg, &small_train(), &ds, &Identity, &mut seeds);
        let mut idx_rng = Rng::seed_from_u64(31);
        let mut ws = EvalWorkspace::new();
        let mut buf = PredictBuffer::new();
        let mut classes = Vec::new();
        let mut proba = Vec::new();
        for &n in BATCH_SIZES {
            let idx = draw_indices(&mut idx_rng, ds.len(), n);
            mlp.predict_classes_batch_into(
                n,
                |si, row| row.copy_from_slice(ds.x(idx[si])),
                &mut ws,
                &mut classes,
            );
            let probas = mlp.predict_proba_batch_into(
                n,
                |si, row| row.copy_from_slice(ds.x(idx[si])),
                &mut ws,
            );
            let m = mlp.out_dim();
            for (si, &i) in idx.iter().enumerate() {
                assert_eq!(
                    classes[si],
                    mlp.predict_class_with(ds.x(i), &mut buf),
                    "class hidden={hidden:?} n={n} si={si}"
                );
                mlp.predict_proba_into(ds.x(i), &mut buf, &mut proba);
                for (j, want) in proba.iter().enumerate() {
                    assert_eq!(
                        probas[si * m + j].to_bits(),
                        want.to_bits(),
                        "proba hidden={hidden:?} n={n} si={si} j={j}"
                    );
                }
            }
        }
    }
}

#[test]
fn mse_batched_values_match_per_example_bitwise() {
    let mut data_rng = Rng::seed_from_u64(12);
    let ds = binding_regression(
        &BindingConfig {
            n: 110,
            dim: 10,
            ..Default::default()
        },
        &mut data_rng,
    );
    for hidden in [vec![6], vec![12], vec![10, 7]] {
        let cfg = MlpConfig {
            hidden: hidden.clone(),
            ..Default::default()
        };
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(22));
        let mlp = Mlp::train(&cfg, &small_train(), &ds, &Identity, &mut seeds);
        let mut idx_rng = Rng::seed_from_u64(32);
        let mut ws = EvalWorkspace::new();
        let mut buf = PredictBuffer::new();
        let mut vals = Vec::new();
        for &n in BATCH_SIZES {
            let idx = draw_indices(&mut idx_rng, ds.len(), n);
            mlp.predict_values_batch_into(
                n,
                |si, row| row.copy_from_slice(ds.x(idx[si])),
                &mut ws,
                &mut vals,
            );
            for (si, &i) in idx.iter().enumerate() {
                assert_eq!(
                    vals[si].to_bits(),
                    mlp.predict_value_with(ds.x(i), &mut buf).to_bits(),
                    "value hidden={hidden:?} n={n} si={si}"
                );
            }
        }
    }
}

#[test]
fn sigmoid_batched_masks_match_per_example_bitwise() {
    let mut data_rng = Rng::seed_from_u64(13);
    let ds = mask_task(
        &MaskTaskConfig {
            n: 90,
            dim: 9,
            mask_len: 12,
            ..Default::default()
        },
        &mut data_rng,
    );
    for hidden in [vec![7], vec![14]] {
        let cfg = MlpConfig {
            hidden: hidden.clone(),
            ..Default::default()
        };
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(23));
        let mlp = Mlp::train(&cfg, &small_train(), &ds, &Identity, &mut seeds);
        let mut idx_rng = Rng::seed_from_u64(33);
        let mut ws = EvalWorkspace::new();
        let mut buf = PredictBuffer::new();
        let mut mask = Vec::new();
        let m = mlp.out_dim();
        for &n in BATCH_SIZES {
            let idx = draw_indices(&mut idx_rng, ds.len(), n);
            let masks = mlp.predict_masks_batch_into(
                n,
                |si, row| row.copy_from_slice(ds.x(idx[si])),
                &mut ws,
            );
            for (si, &i) in idx.iter().enumerate() {
                mlp.predict_mask_into(ds.x(i), &mut buf, &mut mask);
                for (j, want) in mask.iter().enumerate() {
                    assert_eq!(
                        masks[si * m + j].to_bits(),
                        want.to_bits(),
                        "mask hidden={hidden:?} n={n} si={si} j={j}"
                    );
                }
            }
        }
    }
}

#[test]
fn ensemble_buffered_and_batched_paths_match_allocating_wrappers_bitwise() {
    let mut data_rng = Rng::seed_from_u64(14);
    let cls = binary_overlap(
        &BinaryOverlapConfig {
            n: 100,
            dim: 8,
            separation: 2.0,
            ..Default::default()
        },
        &mut data_rng,
    );
    let reg = binding_regression(
        &BindingConfig {
            n: 100,
            dim: 8,
            ..Default::default()
        },
        &mut data_rng,
    );
    let cfg = MlpConfig {
        hidden: vec![6],
        ..Default::default()
    };
    let cls_ens = MlpEnsemble::train(3, &cfg, &small_train(), &cls, &Identity, &SeedTree::new(24));
    let reg_ens = MlpEnsemble::train(3, &cfg, &small_train(), &reg, &Identity, &SeedTree::new(25));
    let mut eb = EnsembleBuffer::new();
    let mut vals = Vec::new();
    let mut idx_rng = Rng::seed_from_u64(34);
    for &n in BATCH_SIZES {
        let idx = draw_indices(&mut idx_rng, reg.len(), n);
        reg_ens.predict_values_batch_into(
            n,
            |si, row| row.copy_from_slice(reg.x(idx[si])),
            &mut eb,
            &mut vals,
        );
        for (si, &i) in idx.iter().enumerate() {
            let want = reg_ens.predict_value(reg.x(i));
            assert_eq!(
                vals[si].to_bits(),
                want.to_bits(),
                "ens value n={n} si={si}"
            );
            let with = reg_ens.predict_value_with(reg.x(i), &mut eb);
            assert_eq!(
                with.to_bits(),
                want.to_bits(),
                "ens value_with n={n} si={si}"
            );
        }
    }
    for i in 0..cls.len() {
        let want_p = cls_ens.predict_proba(cls.x(i));
        let got_p = cls_ens.predict_proba_with(cls.x(i), &mut eb).to_vec();
        for (j, (g, w)) in got_p.iter().zip(&want_p).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "ens proba i={i} j={j}");
        }
        assert_eq!(
            cls_ens.predict_class_with(cls.x(i), &mut eb),
            cls_ens.predict_class(cls.x(i)),
            "ens class i={i}"
        );
    }
}

#[test]
fn linear_batched_paths_match_per_example_bitwise() {
    let mut data_rng = Rng::seed_from_u64(15);
    let cls = binary_overlap(
        &BinaryOverlapConfig {
            n: 100,
            dim: 7,
            separation: 2.0,
            ..Default::default()
        },
        &mut data_rng,
    );
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(26));
    let logreg = LogisticRegression::train(&small_train(), &cls, &mut seeds);
    // Ridge on awkward dimensions (d = 7 exercises the k-fusion tail of
    // the transposed GEMM kernel; values from a fitted model, not toy
    // integers).
    let xs: Vec<f64> = (0..200 * 7).map(|i| (i as f64 * 0.13).sin()).collect();
    let ys: Vec<f64> = (0..200)
        .map(|r| {
            (0..7)
                .map(|k| (k as f64 + 1.0) * xs[r * 7 + k])
                .sum::<f64>()
                + 0.25
        })
        .collect();
    let ridge_ds = Dataset::new(xs, 7, Targets::Values(ys));
    let ridge = RidgeRegression::fit(&ridge_ds, 1e-6);
    let mut ws = EvalWorkspace::new();
    let mut classes = Vec::new();
    let mut idx_rng = Rng::seed_from_u64(35);
    for &n in BATCH_SIZES {
        let idx = draw_indices(&mut idx_rng, cls.len(), n);
        logreg.predict_classes_batch_into(
            n,
            |si, row| row.copy_from_slice(cls.x(idx[si])),
            &mut ws,
            &mut classes,
        );
        for (si, &i) in idx.iter().enumerate() {
            assert_eq!(
                classes[si],
                logreg.predict_class(cls.x(i)),
                "logreg n={n} si={si}"
            );
        }
        let ridx = draw_indices(&mut idx_rng, ridge_ds.len(), n);
        let mut staged = vec![0.0; n * 7];
        for (si, &i) in ridx.iter().enumerate() {
            staged[si * 7..(si + 1) * 7].copy_from_slice(ridge_ds.x(i));
        }
        let mut scores = vec![0.0; n];
        ridge.predict_batch_into(&staged, &mut scores);
        for (si, &i) in ridx.iter().enumerate() {
            assert_eq!(
                scores[si].to_bits(),
                ridge.predict(ridge_ds.x(i)).to_bits(),
                "ridge n={n} si={si}"
            );
        }
    }
}
