//! Allocation-count test for the batched inference path: once the
//! workspaces are warm, scoring further batches must be allocation-free.
//!
//! The batched eval kernels (`Mlp::*_batch_into`, the ensemble's
//! `predict_values_batch_into`, ridge's `predict_batch_into`) manage
//! their slabs with `resize` on caller-owned buffers, so after one
//! warm-up batch at the working size every subsequent batch touches the
//! heap zero times. This is the eval-path analog of
//! `tests/alloc_count.rs` (which pins the training epoch loop).
//!
//! The counting allocator is process-global, so this file holds exactly
//! one `#[test]` (a second test would race the counters).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use varbench_data::augment::Identity;
use varbench_data::synth::{
    binary_overlap, binding_regression, BinaryOverlapConfig, BindingConfig,
};
use varbench_data::{Dataset, Targets};
use varbench_models::ensemble::{EnsembleBuffer, MlpEnsemble};
use varbench_models::linear::RidgeRegression;
use varbench_models::{EvalWorkspace, Mlp, MlpConfig, TrainConfig, TrainSeeds};
use varbench_rng::{Rng, SeedTree};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation and
/// reallocation (a growing `Vec` inside the scoring loop would show up
/// as reallocs).
struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the `System` allocator;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's, forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: ptr/layout come from the paired alloc above, unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: ptr/layout/new_size are forwarded to System unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    after - before
}

#[test]
fn batched_eval_allocates_nothing_after_warmup() {
    const BATCH: usize = 64;
    let mut rng = Rng::seed_from_u64(1);
    let cls = binary_overlap(
        &BinaryOverlapConfig {
            n: 200,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );
    let reg = binding_regression(
        &BindingConfig {
            n: 200,
            dim: 16,
            ..Default::default()
        },
        &mut rng,
    );
    let cfg = MlpConfig {
        hidden: vec![16, 12],
        ..Default::default()
    };
    let tc = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(2));
    let mlp = Mlp::train(&cfg, &tc, &cls, &Identity, &mut seeds);
    let ens = MlpEnsemble::train(3, &cfg, &tc, &reg, &Identity, &SeedTree::new(3));
    let xs: Vec<f64> = (0..200 * 16).map(|i| (i as f64 * 0.17).sin()).collect();
    let ys: Vec<f64> = (0..200).map(|r| xs[r * 16] * 2.0 - 0.3).collect();
    let ridge_ds = Dataset::new(xs, 16, Targets::Values(ys));
    let ridge = RidgeRegression::fit(&ridge_ds, 1e-4);

    let mut ws = EvalWorkspace::new();
    let mut eb = EnsembleBuffer::new();
    let mut classes: Vec<usize> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut staged = vec![0.0; BATCH * 16];
    let mut scores = vec![0.0; BATCH];
    for (si, row) in staged.chunks_exact_mut(16).enumerate() {
        row.copy_from_slice(ridge_ds.x(si));
    }

    let mut run_all = |ws: &mut EvalWorkspace, eb: &mut EnsembleBuffer| {
        mlp.predict_classes_batch_into(
            BATCH,
            |si, row| row.copy_from_slice(cls.x(si)),
            ws,
            &mut classes,
        );
        mlp.predict_proba_batch_into(BATCH, |si, row| row.copy_from_slice(cls.x(si)), ws);
        ens.predict_values_batch_into(
            BATCH,
            |si, row| row.copy_from_slice(reg.x(si)),
            eb,
            &mut vals,
        );
        ridge.predict_batch_into(&staged, &mut scores);
    };

    // Warm-up: first batch sizes every slab (and hits any lazy runtime
    // init); it must allocate.
    let warm = count_allocs(|| run_all(&mut ws, &mut eb));
    assert!(warm > 0, "warm-up must allocate the workspaces");

    // Steady state: 25 more batches through every batched eval kernel
    // must perform zero heap allocations.
    let steady = count_allocs(|| {
        for _ in 0..25 {
            run_all(&mut ws, &mut eb);
        }
    });
    assert_eq!(
        steady, 0,
        "batched eval must be allocation-free once warm ({steady} allocs in 25 batches)"
    );
}
