//! Allocation-count smoke test: the MLP epoch loop must be heap-silent.
//!
//! `Mlp::train` preallocates every training buffer (`TrainWorkspace`)
//! before the epoch loop, so two trainings that differ **only** in epoch
//! count must perform exactly the same number of heap allocations — the
//! extra epochs add zero. This pins the zero-allocation property without
//! needing heap instrumentation inside the library itself.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one `#[test]` (a second test would race the counters).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use varbench_data::augment::Identity;
use varbench_data::synth::{binary_overlap, BinaryOverlapConfig};
use varbench_models::{Mlp, MlpConfig, TrainConfig, TrainSeeds};
use varbench_rng::{Rng, SeedTree};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation (and counts
/// reallocations, which matter here: a growing `Vec` inside the epoch
/// loop would show up as extra reallocs).
struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the `System` allocator;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's, forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: ptr/layout come from the paired alloc above, unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: ptr/layout/new_size are forwarded to System unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn train_alloc_count(
    cfg: &MlpConfig,
    tc: &TrainConfig,
    ds: &varbench_data::Dataset,
    seed: u64,
) -> u64 {
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(seed));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let model = Mlp::train(cfg, tc, ds, &Identity, &mut seeds);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    // Keep the model alive through the second read so its drop (which
    // only frees) cannot reorder into the window.
    drop(model);
    after - before
}

/// Asserts that adding 10 epochs adds zero heap allocations for the
/// given architecture/optimizer combination.
fn assert_epoch_loop_heap_silent(cfg: &MlpConfig, base: &TrainConfig, ds: &varbench_data::Dataset) {
    let short = TrainConfig {
        epochs: 2,
        ..base.clone()
    };
    let long = TrainConfig {
        epochs: 12,
        ..base.clone()
    };
    let short_allocs = train_alloc_count(cfg, &short, ds, 7);
    let long_allocs = train_alloc_count(cfg, &long, ds, 7);
    assert!(short_allocs > 0, "setup must allocate the workspace");
    assert_eq!(
        short_allocs, long_allocs,
        "10 extra epochs must add zero heap allocations for {:?} \
         (epoch loop is not allocation-free)",
        cfg.hidden
    );
}

#[test]
fn epoch_loop_allocates_nothing_after_warmup() {
    let mut rng = Rng::seed_from_u64(1);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 300,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );
    // Warm up once (lazy runtime init — e.g. the first RNG or fmt path —
    // must not pollute the measured windows).
    let warm = TrainConfig {
        epochs: 2,
        dropout: 0.2,
        ..Default::default()
    };
    train_alloc_count(&MlpConfig::default(), &warm, &ds, 7);

    // Dropout on: the mask path must be allocation-free too.
    assert_epoch_loop_heap_silent(
        &MlpConfig::default(),
        &TrainConfig {
            dropout: 0.2,
            ..Default::default()
        },
        &ds,
    );

    // Dropout off: the batched GEMM phases alone — forward through
    // `gemm_rows_into`/`gemm_transb_into`, the strided `gemm_col_nz_into`
    // gradient pass, and the dense below-delta fast path all run inside
    // this window and must stay heap-silent.
    assert_epoch_loop_heap_silent(&MlpConfig::default(), &TrainConfig::default(), &ds);

    // Deeper and wider: two hidden layers exercise the hidden-to-hidden
    // sparse backward path (ReLU-gated deltas) plus every example-block
    // and k-fusion tail (widths 24/12 are not multiples of the 4-row
    // blocks; batch 300 % 32 leaves a 12-example tail batch).
    assert_epoch_loop_heap_silent(
        &MlpConfig {
            hidden: vec![24, 12],
            ..Default::default()
        },
        &TrainConfig {
            dropout: 0.1,
            momentum: 0.8,
            ..Default::default()
        },
        &ds,
    );
}
