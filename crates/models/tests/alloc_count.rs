//! Allocation-count smoke test: the MLP epoch loop must be heap-silent.
//!
//! `Mlp::train` preallocates every training buffer (`TrainWorkspace`)
//! before the epoch loop, so two trainings that differ **only** in epoch
//! count must perform exactly the same number of heap allocations — the
//! extra epochs add zero. This pins the zero-allocation property without
//! needing heap instrumentation inside the library itself.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one `#[test]` (a second test would race the counters).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use varbench_data::augment::Identity;
use varbench_data::synth::{binary_overlap, BinaryOverlapConfig};
use varbench_models::{Mlp, MlpConfig, TrainConfig, TrainSeeds};
use varbench_rng::{Rng, SeedTree};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation (and counts
/// reallocations, which matter here: a growing `Vec` inside the epoch
/// loop would show up as extra reallocs).
struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the `System` allocator;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn train_alloc_count(tc: &TrainConfig, ds: &varbench_data::Dataset, seed: u64) -> u64 {
    let cfg = MlpConfig::default();
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(seed));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let model = Mlp::train(&cfg, tc, ds, &Identity, &mut seeds);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    // Keep the model alive through the second read so its drop (which
    // only frees) cannot reorder into the window.
    drop(model);
    after - before
}

#[test]
fn epoch_loop_allocates_nothing_after_warmup() {
    let mut rng = Rng::seed_from_u64(1);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 300,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );
    // Dropout on: the mask path must be allocation-free too.
    let short = TrainConfig {
        epochs: 2,
        dropout: 0.2,
        ..Default::default()
    };
    let long = TrainConfig {
        epochs: 12,
        ..short.clone()
    };
    // Warm up once (lazy runtime init — e.g. the first RNG or fmt path —
    // must not pollute the measured windows).
    train_alloc_count(&short, &ds, 7);

    let short_allocs = train_alloc_count(&short, &ds, 7);
    let long_allocs = train_alloc_count(&long, &ds, 7);
    assert!(short_allocs > 0, "setup must allocate the workspace");
    assert_eq!(
        short_allocs, long_allocs,
        "10 extra epochs must add zero heap allocations \
         (epoch loop is not allocation-free)"
    );
}
