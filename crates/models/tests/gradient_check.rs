//! Finite-difference verification of the MLP's backpropagation.
//!
//! Trains for a single one-example "batch" with momentum 0, weight decay
//! 0, and learning rate η: the resulting weight update is exactly
//! `−η · ∂L/∂w`. Comparing that update against a central finite
//! difference of the loss verifies every gradient path (softmax, sigmoid
//! BCE, and MSE heads; hidden ReLU layers) to first order.

use varbench_data::augment::Identity;
use varbench_data::{Dataset, Targets};
use varbench_models::{Mlp, MlpConfig, TrainConfig, TrainSeeds};
use varbench_rng::SeedTree;

/// Loss of the network on a single example, recomputed from predictions.
fn loss(mlp: &Mlp, ds: &Dataset) -> f64 {
    match ds.targets() {
        Targets::Labels { labels, .. } => {
            let p = mlp.predict_proba(ds.x(0));
            -p[labels[0]].max(1e-300).ln()
        }
        Targets::Masks { masks, .. } => {
            let p = mlp.predict_mask(ds.x(0));
            -p.iter()
                .zip(&masks[0])
                .map(|(pi, yi)| {
                    let pi = pi.clamp(1e-12, 1.0 - 1e-12);
                    yi * pi.ln() + (1.0 - yi) * (1.0 - pi).ln()
                })
                .sum::<f64>()
        }
        Targets::Values(v) => {
            let pred = mlp.predict_value(ds.x(0));
            0.5 * (pred - v[0]).powi(2)
        }
    }
}

/// One plain-SGD step on the single example; returns the trained model.
fn one_step(ds: &Dataset, eta: f64, seed: u64) -> Mlp {
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(seed));
    Mlp::train(
        &MlpConfig {
            hidden: vec![5],
            ..Default::default()
        },
        &TrainConfig {
            epochs: 1,
            batch_size: 1,
            learning_rate: eta,
            momentum: 0.0,
            weight_decay: 0.0,
            lr_gamma: 1.0,
            dropout: 0.0,
            grad_noise: 0.0,
        },
        ds,
        &Identity,
        &mut seeds,
    )
}

/// Checks that the SGD update direction matches the loss decrease
/// predicted by finite differences: for small η,
/// `L(w') − L(w) ≈ −η ‖∇L‖²`, so the measured decrease divided by the
/// predicted decrease must approach 1 as η shrinks.
fn check_descent(ds: Dataset, label: &str) {
    // The untrained loss: train with lr ~ 0 to snapshot initialization.
    let w0 = one_step(&ds, 1e-12, 7);
    let l0 = loss(&w0, &ds);

    // Gradient magnitude from two different (small) learning rates: the
    // loss decrease should scale linearly in eta.
    let eta1 = 1e-4;
    let eta2 = 2e-4;
    let l1 = loss(&one_step(&ds, eta1, 7), &ds);
    let l2 = loss(&one_step(&ds, eta2, 7), &ds);
    let d1 = l0 - l1;
    let d2 = l0 - l2;
    assert!(
        d1 > 0.0,
        "{label}: one SGD step must decrease the loss (d1 = {d1:e})"
    );
    assert!(
        d2 > 0.0,
        "{label}: one SGD step must decrease the loss (d2 = {d2:e})"
    );
    let ratio = d2 / d1;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "{label}: loss decrease not linear in eta: ratio {ratio} (d1={d1:e}, d2={d2:e})"
    );
}

#[test]
fn softmax_head_gradients_descend_linearly() {
    let ds = Dataset::new(
        vec![0.3, -1.2, 0.8],
        3,
        Targets::Labels {
            labels: vec![1],
            num_classes: 3,
        },
    );
    check_descent(ds, "softmax");
}

#[test]
fn sigmoid_bce_head_gradients_descend_linearly() {
    let ds = Dataset::new(
        vec![1.1, -0.4],
        2,
        Targets::Masks {
            masks: vec![vec![1.0, 0.0, 1.0, 1.0]],
            mask_len: 4,
        },
    );
    check_descent(ds, "sigmoid-bce");
}

#[test]
fn mse_head_gradients_descend_linearly() {
    let ds = Dataset::new(vec![0.5, 0.9, -0.2], 3, Targets::Values(vec![0.7]));
    check_descent(ds, "mse");
}

#[test]
fn momentum_accumulates_velocity() {
    // Two epochs with momentum > 0 must move weights further than without,
    // all else equal (velocity accumulation).
    let ds = Dataset::new(
        vec![0.3, -1.2, 0.8],
        3,
        Targets::Labels {
            labels: vec![1],
            num_classes: 3,
        },
    );
    let train = |momentum: f64| {
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(3));
        Mlp::train(
            &MlpConfig {
                hidden: vec![4],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 3,
                batch_size: 1,
                learning_rate: 1e-3,
                momentum,
                weight_decay: 0.0,
                lr_gamma: 1.0,
                dropout: 0.0,
                grad_noise: 0.0,
            },
            &ds,
            &Identity,
            &mut seeds,
        )
    };
    let plain = train(0.0);
    let with_momentum = train(0.9);
    let l_plain = loss(&plain, &ds);
    let l_momentum = loss(&with_momentum, &ds);
    assert!(
        l_momentum < l_plain,
        "momentum should accelerate descent: {l_momentum} vs {l_plain}"
    );
}

#[test]
fn weight_decay_shrinks_weights() {
    // Strong decay with zero-information data drives logits toward zero →
    // maximum-entropy predictions.
    let ds = Dataset::new(
        vec![1.0, 1.0],
        2,
        Targets::Labels {
            labels: vec![0],
            num_classes: 2,
        },
    );
    let train = |wd: f64| {
        let mut seeds = TrainSeeds::from_tree(&SeedTree::new(4));
        Mlp::train(
            &MlpConfig {
                hidden: vec![],
                ..Default::default()
            },
            &TrainConfig {
                epochs: 200,
                batch_size: 1,
                learning_rate: 0.1,
                momentum: 0.0,
                weight_decay: wd,
                lr_gamma: 1.0,
                dropout: 0.0,
                grad_noise: 0.0,
            },
            &ds,
            &Identity,
            &mut seeds,
        )
    };
    let free = train(0.0);
    let decayed = train(10.0);
    // Decay applies to connection weights (not biases, which may still
    // carry the fit): the weight norm must shrink drastically.
    let n_free = free.weight_norm();
    let n_decayed = decayed.weight_norm();
    assert!(
        n_decayed < n_free / 5.0,
        "decay should crush weights: {n_decayed} vs {n_free}"
    );
    // And the free model fits the single example.
    assert!(free.predict_proba(&[1.0, 1.0])[0] > 0.95);
}
