//! Bootstrap resampling primitives.
//!
//! The paper probes data-sampling variance by "bootstrapping to generate
//! training sets and measuring the out-of-bootstrap error" (Appendix B),
//! with a *stratified* variant for CIFAR10 that preserves class balance
//! (Appendix D.1). These functions produce the index sets; dataset-level
//! assembly lives in `varbench-data`.

use crate::rng::Rng;

/// Draws `k` indices from `0..n` with replacement (one bootstrap replicate).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use varbench_rng::{bootstrap_indices, Rng};
/// let mut rng = Rng::seed_from_u64(1);
/// let idx = bootstrap_indices(&mut rng, 100, 100);
/// assert_eq!(idx.len(), 100);
/// assert!(idx.iter().all(|&i| i < 100));
/// ```
pub fn bootstrap_indices(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(n > 0, "bootstrap over an empty population");
    (0..k).map(|_| rng.range_usize(n)).collect()
}

/// Draws a stratified bootstrap: for each class, `per_class` indices sampled
/// with replacement from that class's members.
///
/// `labels[i]` is the class of element `i`; classes are `0..num_classes`.
/// The result preserves exact class balance, as in the paper's CIFAR10
/// protocol ("for each class separately, we sampled with replacement 4,000
/// training samples...").
///
/// # Panics
///
/// Panics if any class in `0..num_classes` has no members, or if a label is
/// out of range.
pub fn stratified_bootstrap_indices(
    rng: &mut Rng,
    labels: &[usize],
    num_classes: usize,
    per_class: usize,
) -> Vec<usize> {
    let buckets = class_buckets(labels, num_classes);
    let mut out = Vec::with_capacity(num_classes * per_class);
    for (c, members) in buckets.iter().enumerate() {
        assert!(!members.is_empty(), "class {c} has no members");
        for _ in 0..per_class {
            out.push(members[rng.range_usize(members.len())]);
        }
    }
    out
}

/// Returns the out-of-bootstrap complement: all indices of `0..n` that do
/// not appear in `in_bag`.
///
/// For a bootstrap of size `n` drawn from `n` items, the expected
/// out-of-bag fraction is `1/e ≈ 0.368`.
pub fn oob_complement(n: usize, in_bag: &[usize]) -> Vec<usize> {
    let mut seen = vec![false; n];
    for &i in in_bag {
        assert!(i < n, "in-bag index {i} out of range 0..{n}");
        seen[i] = true;
    }
    (0..n).filter(|&i| !seen[i]).collect()
}

/// Stratified out-of-bootstrap sampling: from the out-of-bag members of each
/// class, draws `per_class` indices *with replacement* (so the request can
/// always be satisfied), mirroring the paper's construction of balanced
/// validation and test sets from the bootstrap complement.
///
/// # Panics
///
/// Panics if some class has no out-of-bag member (probability ~(1-1/e)^m,
/// negligible for the class sizes used here) or a label is out of range.
pub fn stratified_oob_indices(
    rng: &mut Rng,
    labels: &[usize],
    num_classes: usize,
    in_bag: &[usize],
    per_class: usize,
) -> Vec<usize> {
    let oob = oob_complement(labels.len(), in_bag);
    let oob_labels: Vec<usize> = oob.iter().map(|&i| labels[i]).collect();
    let buckets = class_buckets(&oob_labels, num_classes);
    let mut out = Vec::with_capacity(num_classes * per_class);
    for (c, members) in buckets.iter().enumerate() {
        assert!(!members.is_empty(), "class {c} has no out-of-bag members");
        for _ in 0..per_class {
            out.push(oob[members[rng.range_usize(members.len())]]);
        }
    }
    out
}

fn class_buckets(labels: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    let mut buckets = vec![Vec::new(); num_classes];
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < num_classes, "label {c} out of range 0..{num_classes}");
        buckets[c].push(i);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_len_and_range() {
        let mut rng = Rng::seed_from_u64(1);
        let idx = bootstrap_indices(&mut rng, 50, 75);
        assert_eq!(idx.len(), 75);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn bootstrap_has_repeats_whp() {
        let mut rng = Rng::seed_from_u64(2);
        let idx = bootstrap_indices(&mut rng, 100, 100);
        let mut u = idx.clone();
        u.sort_unstable();
        u.dedup();
        // P(no repeats) = 100!/100^100, effectively zero.
        assert!(u.len() < 100);
    }

    #[test]
    fn oob_fraction_near_one_over_e() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 10_000;
        let in_bag = bootstrap_indices(&mut rng, n, n);
        let oob = oob_complement(n, &in_bag);
        let frac = oob.len() as f64 / n as f64;
        assert!((frac - 0.368).abs() < 0.02, "oob fraction {frac}");
    }

    #[test]
    fn oob_disjoint_from_in_bag() {
        let mut rng = Rng::seed_from_u64(4);
        let in_bag = bootstrap_indices(&mut rng, 200, 200);
        let oob = oob_complement(200, &in_bag);
        for i in &oob {
            assert!(!in_bag.contains(i));
        }
    }

    #[test]
    fn stratified_bootstrap_balances_classes() {
        let mut rng = Rng::seed_from_u64(5);
        // 3 classes with unbalanced populations.
        let labels: Vec<usize> = (0..300)
            .map(|i| {
                if i < 200 {
                    0
                } else if i < 280 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let idx = stratified_bootstrap_indices(&mut rng, &labels, 3, 40);
        assert_eq!(idx.len(), 120);
        let mut counts = [0usize; 3];
        for &i in &idx {
            counts[labels[i]] += 1;
        }
        assert_eq!(counts, [40, 40, 40]);
    }

    #[test]
    fn stratified_oob_balances_and_avoids_bag() {
        let mut rng = Rng::seed_from_u64(6);
        let labels: Vec<usize> = (0..1000).map(|i| i % 10).collect();
        let in_bag = stratified_bootstrap_indices(&mut rng, &labels, 10, 80);
        let test = stratified_oob_indices(&mut rng, &labels, 10, &in_bag, 20);
        assert_eq!(test.len(), 200);
        let mut counts = [0usize; 10];
        for &i in &test {
            counts[labels[i]] += 1;
            assert!(!in_bag.contains(&i), "test index {i} leaked from train");
        }
        assert!(counts.iter().all(|&c| c == 20));
    }

    #[test]
    #[should_panic(expected = "bootstrap over an empty population")]
    fn empty_population_panics() {
        let mut rng = Rng::seed_from_u64(7);
        bootstrap_indices(&mut rng, 0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_in_bag_index_panics() {
        oob_complement(5, &[7]);
    }
}
