//! Deterministic, seedable random-number substrate for variance-aware
//! benchmarking.
//!
//! The paper this workspace reproduces ("Accounting for Variance in Machine
//! Learning Benchmarks", Bouthillier et al., MLSys 2021) spends its Appendix A
//! on the difficulty of *seeding every source of variation independently* in
//! existing ML frameworks: PyTorch exposed one global RNG, RoBO none at all.
//! This crate makes that discipline structural instead of incidental:
//!
//! * [`Rng`] is a small, fast, fully deterministic generator
//!   (xoshiro256++) with the sampling routines benchmarking needs
//!   (uniform, log-uniform, normal, Bernoulli, binomial, categorical,
//!   shuffling, bootstrap resampling).
//! * [`SeedTree`] derives *named, independent* seed streams from a single
//!   root seed, so "the weight-initialization seed" and "the data-order seed"
//!   are distinct objects that can be held fixed or randomized independently —
//!   exactly the experimental design of the paper's Section 2.2.
//!
//! # Example
//!
//! ```
//! use varbench_rng::SeedTree;
//!
//! let tree = SeedTree::new(42);
//! let mut init_rng = tree.rng("weights_init");
//! let mut order_rng = tree.rng("data_order");
//!
//! // Independent streams: same root, different labels.
//! let w = init_rng.standard_normal();
//! let mut idx: Vec<usize> = (0..10).collect();
//! order_rng.shuffle(&mut idx);
//!
//! // Fully reproducible: rebuilding the tree replays the same streams.
//! let mut replay = SeedTree::new(42).rng("weights_init");
//! assert_eq!(w, replay.standard_normal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod sampling;
mod seed_tree;
mod splitmix;
pub mod sweep;
mod xoshiro;

pub use rng::Rng;
pub use sampling::{
    bootstrap_indices, oob_complement, stratified_bootstrap_indices, stratified_oob_indices,
};
pub use seed_tree::{Seed, SeedTree};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;
