//! A minimal, dependency-free property-test harness: deterministic seed
//! sweeps instead of `proptest`.
//!
//! This workspace must build with an empty cargo registry (no crates.io),
//! so the property tests cannot depend on an external shrinking framework.
//! [`sweep`] recovers the important part — *many generated inputs per
//! invariant* — with the machinery this crate already provides: each case
//! gets an independent [`Rng`] derived from `(harness root, property label,
//! case index)` through the [`SeedTree`], so failures are perfectly
//! reproducible from the message alone and never flake.
//!
//! ```
//! use varbench_rng::sweep::sweep;
//!
//! sweep("addition_commutes", 64, |case| {
//!     let a = case.f64_in(-1e3, 1e3);
//!     let b = case.f64_in(-1e3, 1e3);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng;
use crate::seed_tree::SeedTree;

/// Root seed of the whole harness; changing it re-rolls every sweep.
const HARNESS_ROOT: u64 = 0x5EED_0CA5_E5EE_D0CA;

/// One generated test case: a deterministic [`Rng`] plus drawing helpers
/// mirroring the generators the old `proptest` strategies used.
pub struct Case {
    rng: Rng,
    index: usize,
}

impl Case {
    /// Case number within the sweep (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The case's raw RNG, for draws the helpers below do not cover.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform `f64` in the half-open interval `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Uniform `usize` in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.range_usize(hi - lo)
    }

    /// Uniform `u64` in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.range_u64(hi - lo)
    }

    /// Vector of uniform `f64` draws from `[lo, hi)` with a length drawn
    /// from `[min_len, max_len)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        self.f64s(lo, hi, n)
    }

    /// Vector of exactly `len` uniform `f64` draws from `[lo, hi)`.
    pub fn f64s(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.rng.uniform(lo, hi)).collect()
    }
}

/// Runs `property` once per case with independently seeded inputs.
///
/// `label` keys the seed stream (two sweeps with different labels see
/// different inputs) and names the property in failure output. A panic
/// inside `property` is annotated with the failing case index and seed,
/// then propagated so the enclosing `#[test]` still fails normally.
pub fn sweep<F>(label: &str, cases: usize, mut property: F)
where
    F: FnMut(&mut Case),
{
    let tree = SeedTree::new(HARNESS_ROOT);
    for index in 0..cases {
        let seed = tree.seed_indexed(label, index as u64);
        let mut case = Case {
            rng: seed.rng(),
            index,
        };
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut case)));
        if let Err(payload) = outcome {
            eprintln!("property '{label}' failed at case {index}/{cases} ({seed})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let mut first = Vec::new();
        sweep("determinism", 8, |case| first.push(case.f64_in(0.0, 1.0)));
        let mut second = Vec::new();
        sweep("determinism", 8, |case| second.push(case.f64_in(0.0, 1.0)));
        assert_eq!(first, second);
    }

    #[test]
    fn labels_key_distinct_streams() {
        let mut a = Vec::new();
        sweep("label_a", 4, |case| a.push(case.rng().next_u64()));
        let mut b = Vec::new();
        sweep("label_b", 4, |case| b.push(case.rng().next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn helpers_respect_bounds() {
        sweep("bounds", 64, |case| {
            let x = case.f64_in(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = case.usize_in(3, 9);
            assert!((3..9).contains(&n));
            let u = case.u64_in(10, 20);
            assert!((10..20).contains(&u));
            let v = case.vec_f64(0.0, 1.0, 1, 5);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        });
    }

    #[test]
    #[should_panic(expected = "forced failure")]
    fn failures_propagate() {
        sweep("failing", 4, |case| {
            if case.index() == 2 {
                panic!("forced failure");
            }
        });
    }
}
