//! The user-facing random number generator with benchmark-oriented sampling
//! routines.

use crate::xoshiro::Xoshiro256PlusPlus;

/// A deterministic random number generator for benchmarking experiments.
///
/// Wraps [xoshiro256++](crate::Xoshiro256PlusPlus) and adds the sampling
/// routines the rest of the workspace needs. Every method is deterministic
/// given the seed; there is no global or thread-local state anywhere in this
/// crate.
///
/// # Example
///
/// ```
/// use varbench_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(0xC0FFEE);
/// let lr = rng.log_uniform(1e-3, 0.3);     // hyperparameter sampling
/// let w = rng.normal(0.0, 0.02);           // weight initialization
/// let keep = rng.bernoulli(0.9);           // dropout mask
/// assert!((1e-3..=0.3).contains(&lr));
/// assert!(w.is_finite());
/// let _ = keep;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    core: Xoshiro256PlusPlus,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            core: Xoshiro256PlusPlus::from_seed(seed),
        }
    }

    /// Returns the next raw `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.core.next_f64()
    }

    /// Splits off an independent generator.
    ///
    /// The child is seeded from this generator's stream; both may be used
    /// afterwards without correlation.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    // ------------------------------------------------------------------
    // Integer sampling
    // ------------------------------------------------------------------

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses rejection sampling (Lemire's method) so the result is exactly
    /// uniform, not merely approximately.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize requires n > 0");
        let n = n as u64;
        // Lemire's nearly-divisionless unbiased bounded sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.range_u64(span) as i64
    }

    /// Returns a uniform `u64` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 requires n > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    // ------------------------------------------------------------------
    // Continuous distributions
    // ------------------------------------------------------------------

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "uniform requires lo <= hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a log-uniform `f64` in `[lo, hi)`: uniform in log-space.
    ///
    /// This is the standard prior for scale hyperparameters such as the
    /// learning rate or weight decay (paper Tables 2, 3, 5, 6).
    ///
    /// # Panics
    ///
    /// Panics if bounds are not strictly positive or `lo > hi`.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > 0.0, "log_uniform requires positive bounds");
        assert!(lo <= hi, "log_uniform requires lo <= hi");
        (self.uniform(lo.ln(), hi.ln())).exp()
    }

    /// Returns a standard normal deviate (mean 0, variance 1).
    ///
    /// Uses the Marsaglia polar method; exact to `f64` precision.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Returns a normal deviate with the given `mean` and `std`.
    ///
    /// # Panics
    ///
    /// Panics if `std < 0`.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "normal requires std >= 0");
        mean + std * self.standard_normal()
    }

    /// Returns an exponential deviate with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential requires lambda > 0");
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / lambda
    }

    // ------------------------------------------------------------------
    // Discrete distributions
    // ------------------------------------------------------------------

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "bernoulli requires p in [0,1]");
        self.next_f64() < p
    }

    /// Returns a Binomial(n, p) deviate: the number of successes in `n`
    /// independent trials with success probability `p`.
    ///
    /// Exact (sum of Bernoullis) for `n <= 128`; for larger `n` uses the
    /// BTRS-free normal approximation with continuity correction, clamped to
    /// `[0, n]`, which is accurate to well under the sampling noise for the
    /// test-set sizes this workspace models (Fig. 2 uses n up to 10^6).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "binomial requires p in [0,1]");
        if p == 0.0 || n == 0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        if n <= 128 {
            let mut k = 0;
            for _ in 0..n {
                if self.bernoulli(p) {
                    k += 1;
                }
            }
            k
        } else {
            let mean = n as f64 * p;
            let std = (n as f64 * p * (1.0 - p)).sqrt();
            let x = (self.normal(mean, std) + 0.5).floor();
            x.clamp(0.0, n as f64) as u64
        }
    }

    /// Samples an index according to non-negative `weights`.
    ///
    /// Weights need not be normalized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "categorical requires weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "categorical requires a positive total weight");
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    // ------------------------------------------------------------------
    // Sequence operations
    // ------------------------------------------------------------------

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n`, in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher-Yates over an index vector; O(n) allocation but the
        // populations in this workspace are small (<= 1e6).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.range_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng(1);
        for _ in 0..10_000 {
            let x = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn log_uniform_respects_bounds_and_shape() {
        let mut r = rng(2);
        let mut below_geo_mean = 0;
        let n = 20_000;
        let (lo, hi) = (1e-4f64, 1e0f64);
        let geo_mean = (lo * hi).sqrt(); // 1e-2
        for _ in 0..n {
            let x = r.log_uniform(lo, hi);
            assert!((lo..hi).contains(&x));
            if x < geo_mean {
                below_geo_mean += 1;
            }
        }
        // Log-uniform => half the mass below the geometric mean.
        let frac = below_geo_mean as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut r = rng(6);
        let reps = 20_000;
        let (n, p) = (20u64, 0.4);
        let xs: Vec<f64> = (0..reps).map(|_| r.binomial(n, p) as f64).collect();
        let mean = xs.iter().sum::<f64>() / reps as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / reps as f64;
        assert!((mean - 8.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.8).abs() < 0.25, "var {var}");
    }

    #[test]
    fn binomial_large_n_moments() {
        let mut r = rng(7);
        let reps = 5_000;
        let (n, p) = (10_000u64, 0.91);
        let xs: Vec<f64> = (0..reps).map(|_| r.binomial(n, p) as f64).collect();
        let mean = xs.iter().sum::<f64>() / reps as f64;
        let expected_std = (n as f64 * p * (1.0 - p)).sqrt();
        let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / reps as f64).sqrt();
        assert!((mean / (n as f64 * p) - 1.0).abs() < 0.001, "mean {mean}");
        assert!((std / expected_std - 1.0).abs() < 0.1, "std {std}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(8);
        assert_eq!(r.binomial(0, 0.5), 0);
        assert_eq!(r.binomial(100, 0.0), 0);
        assert_eq!(r.binomial(100, 1.0), 100);
    }

    #[test]
    fn categorical_distribution() {
        let mut r = rng(9);
        let w = [1.0, 2.0, 7.0];
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[r.categorical(&w)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng(10);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_uniformish() {
        // Position of element 0 after shuffling should be uniform.
        let n = 10_000;
        let mut at_zero = 0;
        for seed in 0..n {
            let mut r = rng(seed);
            let mut v: Vec<usize> = (0..10).collect();
            r.shuffle(&mut v);
            if v[0] == 0 {
                at_zero += 1;
            }
        }
        let frac = at_zero as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(11);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut r = rng(12);
        let mut s = r.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_usize_unbiased_small() {
        let mut r = rng(13);
        let n = 300_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[r.range_usize(3)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.005, "frac {frac}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = rng(14);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let x = r.range_inclusive(-2, 2);
            assert!((-2..=2).contains(&x));
            saw_lo |= x == -2;
            saw_hi |= x == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn split_streams_are_uncorrelated_prefixes() {
        let mut a = rng(15);
        let mut b = a.split();
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(16);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = rng(17);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }

    #[test]
    #[should_panic(expected = "range_usize requires n > 0")]
    fn range_zero_panics() {
        rng(18).range_usize(0);
    }

    #[test]
    #[should_panic(expected = "bernoulli requires p in [0,1]")]
    fn bernoulli_bad_p_panics() {
        rng(19).bernoulli(1.5);
    }
}
