//! xoshiro256++: the core pseudo-random generator.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) is a fast all-purpose generator
//! with 256 bits of state, period 2^256 − 1, and excellent statistical
//! quality. It is the engine behind [`crate::Rng`].

use crate::splitmix::SplitMix64;

/// A xoshiro256++ generator.
///
/// Construct it from a 64-bit seed with [`Xoshiro256PlusPlus::from_seed`]
/// (the seed is expanded through SplitMix64, per the authors'
/// recommendation) or from raw 256-bit state with
/// [`Xoshiro256PlusPlus::from_state`].
///
/// # Example
///
/// ```
/// use varbench_rng::Xoshiro256PlusPlus;
/// let mut rng = Xoshiro256PlusPlus::from_seed(7);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through SplitMix64.
    ///
    /// All `u64` seeds are valid and yield distinct streams.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output is equidistributed so an all-zero expansion is
        // possible only for one pathological seed in 2^256; guard anyway.
        if s == [0; 4] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Creates a generator from raw state.
    ///
    /// Returns `None` if `state` is all zeros (the one invalid state, which
    /// would make the generator emit zeros forever).
    pub fn from_state(state: [u64; 4]) -> Option<Self> {
        if state == [0; 4] {
            None
        } else {
            Some(Self { s: state })
        }
    }

    /// Returns the raw 256-bit state (for checkpoint/resume).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next pseudo-random `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);

        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);

        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Advances the generator 2^128 steps, producing a non-overlapping
    /// subsequence. Useful for carving independent parallel streams out of
    /// one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = Xoshiro256PlusPlus::from_seed(99);
        let mut b = Xoshiro256PlusPlus::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_values_known_state() {
        // Reference outputs from the public C reference implementation of
        // xoshiro256++ initialized with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]).unwrap();
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
        assert_eq!(rng.next_u64(), 3591011842654386);
    }

    #[test]
    fn zero_state_rejected() {
        assert!(Xoshiro256PlusPlus::from_state([0; 4]).is_none());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::from_seed(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256PlusPlus::from_seed(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        // std err of the mean of U(0,1) over 1e5 draws ~ 0.0009; allow 6 sigma.
        assert!((mean - 0.5).abs() < 0.006, "mean {mean}");
    }

    #[test]
    fn jump_produces_disjoint_stream_prefix() {
        let mut a = Xoshiro256PlusPlus::from_seed(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn state_roundtrip() {
        let mut a = Xoshiro256PlusPlus::from_seed(8);
        a.next_u64();
        let snap = a.state();
        let mut b = Xoshiro256PlusPlus::from_state(snap).unwrap();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
