//! Named, independent seed streams derived from a single root seed.
//!
//! The experimental design of the paper requires holding *some* sources of
//! variation fixed while randomizing others (Section 2.2: "iteratively for
//! each source of variance, we randomized the seeds 200 times, while keeping
//! all other sources fixed"). That is only possible when each source owns an
//! independent seed. [`SeedTree`] provides exactly that: child seeds are
//! derived from `(root, label, index)` through a strong mixing function, so
//! two different labels never share a stream and the same `(root, label,
//! index)` always replays identically.

use crate::rng::Rng;
use crate::splitmix;

/// An opaque 64-bit seed.
///
/// Newtype so that seeds are not confused with counts or indices in APIs
/// that take several `u64`-like arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Seed(pub u64);

impl Seed {
    /// Creates the RNG seeded by this seed.
    pub fn rng(self) -> Rng {
        Rng::seed_from_u64(self.0)
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed:{:#018x}", self.0)
    }
}

/// Derives named, independent seed streams from a root seed.
///
/// # Example
///
/// ```
/// use varbench_rng::SeedTree;
///
/// let tree = SeedTree::new(2021);
/// // Each variance source of a learning pipeline gets its own stream:
/// let init = tree.seed("weights_init");
/// let order = tree.seed("data_order");
/// assert_ne!(init, order);
///
/// // Indexed derivation for the i-th repetition of an experiment:
/// let rep0 = tree.seed_indexed("bootstrap", 0);
/// let rep1 = tree.seed_indexed("bootstrap", 1);
/// assert_ne!(rep0, rep1);
///
/// // Subtrees namespace whole experiments:
/// let hopt = tree.subtree("hopt");
/// assert_ne!(hopt.seed("trial"), tree.seed("trial"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    root: u64,
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl SeedTree {
    /// Creates a tree rooted at `root`. All roots are valid.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// Returns the root seed value.
    pub fn root(&self) -> Seed {
        Seed(self.root)
    }

    /// Derives the seed for `label`.
    ///
    /// Deterministic: the same `(root, label)` always returns the same seed;
    /// different labels yield independent streams.
    pub fn seed(&self, label: &str) -> Seed {
        let h = fnv1a(FNV_OFFSET ^ self.root, label.as_bytes());
        Seed(splitmix::mix(h))
    }

    /// Derives the seed for the `index`-th member of the `label` family.
    ///
    /// Used for repetition seeds: `seed_indexed("bootstrap", i)` is the seed
    /// of the i-th bootstrap replicate.
    pub fn seed_indexed(&self, label: &str, index: u64) -> Seed {
        let h = fnv1a(FNV_OFFSET ^ self.root, label.as_bytes());
        let h = fnv1a(h, &index.to_le_bytes());
        Seed(splitmix::mix(h))
    }

    /// Creates the RNG for `label` directly.
    pub fn rng(&self, label: &str) -> Rng {
        self.seed(label).rng()
    }

    /// Creates the RNG for `(label, index)` directly.
    pub fn rng_indexed(&self, label: &str, index: u64) -> Rng {
        self.seed_indexed(label, index).rng()
    }

    /// Derives a child tree namespaced by `label`.
    ///
    /// Streams under the child tree are independent from streams with the
    /// same labels under `self` or any other sibling subtree.
    pub fn subtree(&self, label: &str) -> SeedTree {
        SeedTree::new(self.seed(label).0 ^ 0x5EED_7EEE_0000_0001)
    }

    /// Derives a child tree namespaced by `(label, index)`.
    pub fn subtree_indexed(&self, label: &str, index: u64) -> SeedTree {
        SeedTree::new(self.seed_indexed(label, index).0 ^ 0x5EED_7EEE_0000_0001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_independent() {
        let t = SeedTree::new(1);
        assert_ne!(t.seed("a"), t.seed("b"));
        assert_ne!(t.seed("a"), t.seed("aa"));
        assert_ne!(t.seed(""), t.seed("a"));
    }

    #[test]
    fn roots_are_independent() {
        assert_ne!(SeedTree::new(1).seed("x"), SeedTree::new(2).seed("x"));
    }

    #[test]
    fn indexed_family_is_distinct() {
        let t = SeedTree::new(3);
        let seeds: Vec<Seed> = (0..100).map(|i| t.seed_indexed("rep", i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn indexed_differs_from_plain() {
        let t = SeedTree::new(4);
        assert_ne!(t.seed("rep"), t.seed_indexed("rep", 0));
    }

    #[test]
    fn subtree_namespaces() {
        let t = SeedTree::new(5);
        let s = t.subtree("hopt");
        assert_ne!(t.seed("trial"), s.seed("trial"));
        // And nested subtrees differ from each other.
        assert_ne!(s.subtree("x").seed("k"), t.subtree("x").seed("k"));
    }

    #[test]
    fn replay_is_exact() {
        let a = SeedTree::new(6).rng("stream").next_u64();
        let b = SeedTree::new(6).rng("stream").next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn display_formats_hex() {
        let s = Seed(0xABCD);
        assert_eq!(format!("{s}"), "seed:0x000000000000abcd");
    }

    #[test]
    fn label_prefix_collision_resistance() {
        // "ab" under root r must differ from "a" followed by deriving "b":
        // labels are hashed whole, not concatenated.
        let t = SeedTree::new(7);
        assert_ne!(t.seed("ab"), t.subtree("a").seed("b"));
    }
}
