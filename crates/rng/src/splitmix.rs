//! SplitMix64: the canonical 64-bit seed expander.
//!
//! SplitMix64 (Steele, Lea & Flood, 2014) is a tiny, statistically sound
//! generator whose main use here is turning a single `u64` seed into the
//! 256-bit state required by [`crate::Xoshiro256PlusPlus`], and mixing
//! label hashes when deriving child seeds in [`crate::SeedTree`].

/// A SplitMix64 generator.
///
/// Every distinct seed yields a distinct, well-mixed output stream; the
/// generator is equidistributed over `u64` with period 2^64.
///
/// # Example
///
/// ```
/// use varbench_rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Exposes the raw internal counter (useful for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// The SplitMix64 finalization mix: a strong 64-bit bijective hash.
///
/// Used standalone for label-based seed derivation where we need a
/// high-quality deterministic mapping `u64 -> u64`.
pub(crate) fn mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_seed_zero() {
        // Reference outputs for SplitMix64 with seed 0 (from the public
        // reference implementation by Sebastiano Vigna).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn deterministic_replay() {
        let mut a = SplitMix64::new(123);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(123);
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn mix_is_not_identity() {
        assert_ne!(mix(1), 1);
        assert_ne!(mix(0xFFFF_FFFF_FFFF_FFFF), 0xFFFF_FFFF_FFFF_FFFF);
    }

    #[test]
    fn state_advances() {
        let mut sm = SplitMix64::new(7);
        let s0 = sm.state();
        sm.next_u64();
        assert_ne!(sm.state(), s0);
    }
}
