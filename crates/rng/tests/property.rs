//! Property-based tests of the RNG substrate.

use proptest::prelude::*;
use varbench_rng::{bootstrap_indices, oob_complement, Rng, SeedTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_usize_always_in_bounds(seed in 0u64..10_000, n in 1usize..10_000) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.range_usize(n) < n);
        }
    }

    #[test]
    fn uniform_in_half_open_interval(seed in 0u64..10_000, lo in -100.0f64..100.0, span in 0.001f64..100.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..20 {
            let x = rng.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }

    #[test]
    fn binomial_never_exceeds_n(seed in 0u64..1000, n in 0u64..500, p in 0.0f64..1.0) {
        let mut rng = Rng::seed_from_u64(seed);
        prop_assert!(rng.binomial(n, p) <= n);
    }

    #[test]
    fn permutation_is_bijection(seed in 0u64..10_000, n in 1usize..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut p = rng.permutation(n);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct(seed in 0u64..10_000, n in 1usize..300) {
        let mut rng = Rng::seed_from_u64(seed);
        let k = n / 2 + 1;
        let mut s = rng.sample_indices(n, k.min(n));
        let len = s.len();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), len, "duplicates in sample");
    }

    #[test]
    fn oob_partition_is_exact(seed in 0u64..10_000, n in 1usize..500) {
        let mut rng = Rng::seed_from_u64(seed);
        let bag = bootstrap_indices(&mut rng, n, n);
        let oob = oob_complement(n, &bag);
        // Union of unique(bag) and oob is 0..n, and they are disjoint.
        let mut uniq: Vec<usize> = bag.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let mut all = uniq.clone();
        all.extend_from_slice(&oob);
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn seed_tree_deterministic_and_label_sensitive(root in 0u64..100_000) {
        let t1 = SeedTree::new(root);
        let t2 = SeedTree::new(root);
        prop_assert_eq!(t1.seed("a"), t2.seed("a"));
        prop_assert_ne!(t1.seed("a"), t1.seed("b"));
    }

    #[test]
    fn split_streams_diverge(seed in 0u64..100_000) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_ne!(xs, ys);
    }
}
