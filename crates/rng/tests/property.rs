//! Property-based tests of the RNG substrate, driven by the in-repo
//! deterministic seed-sweep harness ([`varbench_rng::sweep`]).

use varbench_rng::sweep::sweep;
use varbench_rng::{bootstrap_indices, oob_complement, Rng, SeedTree};

#[test]
fn range_usize_always_in_bounds() {
    sweep("range_usize_always_in_bounds", 64, |case| {
        let seed = case.u64_in(0, 10_000);
        let n = case.usize_in(1, 10_000);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(rng.range_usize(n) < n);
        }
    });
}

#[test]
fn uniform_in_half_open_interval() {
    sweep("uniform_in_half_open_interval", 64, |case| {
        let seed = case.u64_in(0, 10_000);
        let lo = case.f64_in(-100.0, 100.0);
        let span = case.f64_in(0.001, 100.0);
        let mut rng = Rng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..20 {
            let x = rng.uniform(lo, hi);
            assert!((lo..hi).contains(&x));
        }
    });
}

#[test]
fn binomial_never_exceeds_n() {
    sweep("binomial_never_exceeds_n", 64, |case| {
        let seed = case.u64_in(0, 1000);
        let n = case.u64_in(0, 500);
        let p = case.f64_in(0.0, 1.0);
        let mut rng = Rng::seed_from_u64(seed);
        assert!(rng.binomial(n, p) <= n);
    });
}

#[test]
fn permutation_is_bijection() {
    sweep("permutation_is_bijection", 64, |case| {
        let seed = case.u64_in(0, 10_000);
        let n = case.usize_in(1, 200);
        let mut rng = Rng::seed_from_u64(seed);
        let mut p = rng.permutation(n);
        p.sort_unstable();
        assert_eq!(p, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn sample_indices_distinct() {
    sweep("sample_indices_distinct", 64, |case| {
        let seed = case.u64_in(0, 10_000);
        let n = case.usize_in(1, 300);
        let mut rng = Rng::seed_from_u64(seed);
        let k = n / 2 + 1;
        let mut s = rng.sample_indices(n, k.min(n));
        let len = s.len();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), len, "duplicates in sample");
    });
}

#[test]
fn oob_partition_is_exact() {
    sweep("oob_partition_is_exact", 64, |case| {
        let seed = case.u64_in(0, 10_000);
        let n = case.usize_in(1, 500);
        let mut rng = Rng::seed_from_u64(seed);
        let bag = bootstrap_indices(&mut rng, n, n);
        let oob = oob_complement(n, &bag);
        // Union of unique(bag) and oob is 0..n, and they are disjoint.
        let mut uniq: Vec<usize> = bag.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let mut all = uniq.clone();
        all.extend_from_slice(&oob);
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn seed_tree_deterministic_and_label_sensitive() {
    sweep("seed_tree_deterministic_and_label_sensitive", 64, |case| {
        let root = case.u64_in(0, 100_000);
        let t1 = SeedTree::new(root);
        let t2 = SeedTree::new(root);
        assert_eq!(t1.seed("a"), t2.seed("a"));
        assert_ne!(t1.seed("a"), t1.seed("b"));
    });
}

#[test]
fn split_streams_diverge() {
    sweep("split_streams_diverge", 64, |case| {
        let seed = case.u64_in(0, 100_000);
        let mut a = Rng::seed_from_u64(seed);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    });
}
