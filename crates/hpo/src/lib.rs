//! Hyperparameter optimization: the ξ_H variance sources of the paper.
//!
//! The paper studies three HPO algorithms (Section 2.2): random search,
//! (noisy) grid search, and Bayesian optimization, showing that the
//! residual stochasticity of hyperparameter choice "induces on average as
//! much variance as the commonly studied weights initialization". This
//! crate implements all three from scratch, fully seedable — including the
//! Gaussian-process/Expected-Improvement optimizer the paper ran through
//! RoBO (which it had to seed through global state; ours is seedable by
//! construction, Appendix A).
//!
//! * [`SearchSpace`] / [`Dim`] — uniform, log-uniform, and integer
//!   dimensions (the spaces of the paper's Tables 2, 3, 5, 6);
//! * [`GridSearch`] / [`NoisyGridSearch`] — Appendix E.1/E.2, including the
//!   ±Δ/2 bound perturbation whose expectation provably recovers the plain
//!   grid;
//! * [`RandomSearch`] — Appendix E.3, log-aware, with the same expanded
//!   bounds as the noisy grid;
//! * [`BayesOpt`] — GP (Matérn-5/2) surrogate + Expected Improvement;
//! * [`Optimizer`] / [`minimize`] — the ask/tell driver producing a trial
//!   [`History`] with best-so-far curves (Fig. F.2).
//!
//! # Example
//!
//! ```
//! use varbench_hpo::{minimize, Dim, RandomSearch, SearchSpace};
//!
//! let space = SearchSpace::new(vec![
//!     ("learning_rate".into(), Dim::log_uniform(1e-3, 0.3)),
//!     ("weight_decay".into(), Dim::log_uniform(1e-6, 1e-2)),
//! ]);
//! let mut opt = RandomSearch::new(space.clone(), 42);
//! // Minimize a toy objective: distance to (0.03, 2e-4) in log space.
//! let history = minimize(&mut opt, 50, |p| {
//!     (p[0].ln() - 0.03f64.ln()).powi(2) + (p[1].ln() - 2e-4f64.ln()).powi(2)
//! });
//! assert!(history.best().unwrap().objective < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bayes;
mod grid;
mod random;
mod space;
mod trial;

pub use bayes::{BayesOpt, BayesOptConfig};
pub use grid::{GridSearch, NoisyGridSearch};
pub use random::RandomSearch;
pub use space::{Dim, SearchSpace};
pub use trial::{minimize, History, Optimizer, Trial};
