//! Grid search and the paper's *noisy* grid search (Appendix E.1–E.2).
//!
//! Plain grid search is deterministic, so it would contribute zero ξ_H
//! variance — yet "the specific choice of the parameter range is arbitrary
//! and can be an uncontrolled source of variance (e.g., does the grid size
//! step by powers of 2, 10, or increments of 0.25 or 0.5)". The noisy grid
//! models that arbitrariness: each bound is perturbed by ±Δ/2 (half a grid
//! step), which in expectation recovers the plain grid (proved in Appendix
//! E.2 and property-tested here).

use crate::space::{Dim, SearchSpace};
use crate::trial::Optimizer;
use varbench_rng::Rng;

/// Deterministic grid search over `points_per_dim^d` configurations.
///
/// Points are visited in a seeded random order so a truncated budget is an
/// unbiased subset of the grid. When the budget exceeds the grid size the
/// enumeration wraps around.
#[derive(Debug, Clone)]
pub struct GridSearch {
    points: Vec<Vec<f64>>,
    cursor: usize,
}

impl GridSearch {
    /// Builds the grid with `points_per_dim` values per dimension.
    ///
    /// `order_seed` shuffles the visit order (use a fixed value for a fully
    /// deterministic run).
    ///
    /// # Panics
    ///
    /// Panics if `points_per_dim < 2` or the grid would exceed 10^7 points.
    pub fn new(space: SearchSpace, points_per_dim: usize, order_seed: u64) -> Self {
        let points = build_grid(&space, points_per_dim, None);
        let mut points = points;
        let mut rng = Rng::seed_from_u64(order_seed);
        rng.shuffle(&mut points);
        Self { points, cursor: 0 }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Optimizer for GridSearch {
    fn ask(&mut self) -> Vec<f64> {
        let p = self.points[self.cursor % self.points.len()].clone();
        self.cursor += 1;
        p
    }

    fn tell(&mut self, _params: &[f64], _objective: f64) {}
}

/// The paper's noisy grid search: grid bounds perturbed by ±Δ/2.
///
/// For each dimension with grid step `Δ`, the lower bound becomes
/// `ã ∼ U(a − Δ/2, a + Δ/2)` and likewise for the upper bound; the grid is
/// then laid out between the perturbed bounds. `E[p̃ᵢⱼ] = pᵢⱼ`: in
/// expectation the noisy grid *is* the plain grid. Log-uniform dimensions
/// are perturbed in log space.
#[derive(Debug, Clone)]
pub struct NoisyGridSearch {
    points: Vec<Vec<f64>>,
    cursor: usize,
}

impl NoisyGridSearch {
    /// Builds a noisy grid with `points_per_dim` values per dimension,
    /// with bound perturbations and visit order drawn from `seed` (the ξ_H
    /// stream).
    ///
    /// # Panics
    ///
    /// As [`GridSearch::new`].
    pub fn new(space: SearchSpace, points_per_dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut points = build_grid(&space, points_per_dim, Some(&mut rng));
        rng.shuffle(&mut points);
        Self { points, cursor: 0 }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Optimizer for NoisyGridSearch {
    fn ask(&mut self) -> Vec<f64> {
        let p = self.points[self.cursor % self.points.len()].clone();
        self.cursor += 1;
        p
    }

    fn tell(&mut self, _params: &[f64], _objective: f64) {}
}

/// Lays out the (possibly perturbed) grid. With `noise` = `None` this is
/// the plain grid of Appendix E.1; with an RNG it is the noisy grid of
/// Appendix E.2.
fn build_grid(
    space: &SearchSpace,
    points_per_dim: usize,
    mut noise: Option<&mut Rng>,
) -> Vec<Vec<f64>> {
    assert!(points_per_dim >= 2, "grid needs at least 2 points per dim");
    let total = (points_per_dim as f64).powi(space.len() as i32);
    assert!(total <= 1e7, "grid of {total} points is too large");

    // Per-dimension value lists, in the dimension's natural scale.
    let values: Vec<Vec<f64>> = space
        .dims()
        .iter()
        .map(|(_, d)| match &mut noise {
            None => d.grid(points_per_dim),
            Some(rng) => noisy_axis(d, points_per_dim, rng),
        })
        .collect();

    // Cartesian product.
    let n = points_per_dim.pow(space.len() as u32);
    let mut out = Vec::with_capacity(n);
    for mut idx in 0..n {
        let mut point = Vec::with_capacity(space.len());
        for vals in &values {
            point.push(vals[idx % points_per_dim]);
            idx /= points_per_dim;
        }
        out.push(point);
    }
    out
}

/// One noisy grid axis: perturb bounds by ±Δ/2 in the dimension's working
/// scale (log for log-uniform), then lay out `n` evenly spaced values.
fn noisy_axis(dim: &Dim, n: usize, rng: &mut Rng) -> Vec<f64> {
    // Work in the transformed (linearizing) scale.
    let (a, b, log_scale, integer) = match *dim {
        Dim::Uniform { lo, hi } => (lo, hi, false, false),
        Dim::LogUniform { lo, hi } => (lo.ln(), hi.ln(), true, false),
        Dim::Integer { lo, hi } => (lo as f64, hi as f64, false, true),
    };
    let delta = (b - a) / (n - 1) as f64;
    let a_t = rng.uniform(a - delta / 2.0, a + delta / 2.0);
    let b_t = rng.uniform(b - delta / 2.0, b + delta / 2.0);
    let step = (b_t - a_t) / (n - 1) as f64;
    (0..n)
        .map(|i| {
            let v = a_t + step * i as f64;
            let v = if log_scale { v.exp() } else { v };
            if integer {
                v.round()
            } else {
                v
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::minimize;

    fn space2() -> SearchSpace {
        SearchSpace::new(vec![
            ("x".into(), Dim::uniform(0.0, 1.0)),
            ("y".into(), Dim::log_uniform(1e-3, 1e0)),
        ])
    }

    #[test]
    fn grid_covers_cartesian_product() {
        let g = GridSearch::new(space2(), 4, 0);
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn grid_finds_optimum_on_grid() {
        // Objective minimized at x = 1/3, which lies on a 4-point grid.
        let mut g = GridSearch::new(space2(), 4, 1);
        let h = minimize(&mut g, 16, |p| (p[0] - 1.0 / 3.0).powi(2));
        assert!((h.best().unwrap().params[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_wraps_past_budget() {
        let mut g = GridSearch::new(space2(), 2, 2);
        let first: Vec<Vec<f64>> = (0..4).map(|_| g.ask()).collect();
        let second: Vec<Vec<f64>> = (0..4).map(|_| g.ask()).collect();
        assert_eq!(first, second, "enumeration wraps deterministically");
    }

    #[test]
    fn plain_grid_has_no_variance_across_seeds() {
        // Only the *order* differs; the point set is identical.
        let mut a: Vec<Vec<f64>> = {
            let mut g = GridSearch::new(space2(), 3, 10);
            (0..9).map(|_| g.ask()).collect()
        };
        let mut b: Vec<Vec<f64>> = {
            let mut g = GridSearch::new(space2(), 3, 20);
            (0..9).map(|_| g.ask()).collect()
        };
        let key = |p: &Vec<f64>| format!("{:.9e},{:.9e}", p[0], p[1]);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_grid_differs_across_seeds() {
        let a = NoisyGridSearch::new(space2(), 3, 1).points;
        let b = NoisyGridSearch::new(space2(), 3, 2).points;
        assert_ne!(a, b);
    }

    #[test]
    fn noisy_grid_expectation_recovers_plain_grid() {
        // E[p̃_ij] = p_ij (Appendix E.2): average many noisy axes.
        let dim = Dim::uniform(0.0, 1.0);
        let n = 5;
        let reps = 20_000;
        let mut sums = vec![0.0; n];
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..reps {
            for (s, v) in sums.iter_mut().zip(noisy_axis(&dim, n, &mut rng)) {
                *s += v;
            }
        }
        let plain = dim.grid(n);
        for (i, s) in sums.iter().enumerate() {
            let mean = s / reps as f64;
            assert!(
                (mean - plain[i]).abs() < 0.01,
                "axis point {i}: mean {mean} vs plain {}",
                plain[i]
            );
        }
    }

    #[test]
    fn noisy_log_axis_stays_positive() {
        let dim = Dim::log_uniform(1e-4, 1e-1);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..200 {
            for v in noisy_axis(&dim, 4, &mut rng) {
                assert!(v > 0.0, "log-axis value must stay positive: {v}");
            }
        }
    }

    #[test]
    fn noisy_integer_axis_rounds() {
        let dim = Dim::integer(1, 9);
        let mut rng = Rng::seed_from_u64(5);
        for v in noisy_axis(&dim, 5, &mut rng) {
            assert_eq!(v, v.round());
        }
    }

    #[test]
    #[should_panic(expected = "grid needs at least 2 points")]
    fn tiny_grid_rejected() {
        GridSearch::new(space2(), 1, 0);
    }
}
