//! Random search (paper Appendix E.3).

use crate::space::SearchSpace;
use crate::trial::Optimizer;
use varbench_rng::Rng;

/// Random search: each trial is an independent sample from the search
/// space (log-aware for log-uniform dimensions).
///
/// The sampling stream is the ξ_H variance source for this optimizer: two
/// `RandomSearch` instances with different seeds explore different
/// configurations and generally end at different "optimal"
/// hyperparameters, which is exactly the variance the paper measures.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: SearchSpace,
    rng: Rng,
}

impl RandomSearch {
    /// Creates a random search over `space` seeded by `seed`.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }
}

impl Optimizer for RandomSearch {
    fn ask(&mut self) -> Vec<f64> {
        self.space.sample(&mut self.rng)
    }

    fn tell(&mut self, _params: &[f64], _objective: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;
    use crate::trial::minimize;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ("x".into(), Dim::uniform(-2.0, 2.0)),
            ("lr".into(), Dim::log_uniform(1e-4, 1e0)),
        ])
    }

    #[test]
    fn proposals_in_bounds() {
        let mut rs = RandomSearch::new(space(), 1);
        for _ in 0..500 {
            let p = rs.ask();
            assert!((-2.0..2.0).contains(&p[0]));
            assert!((1e-4..1e0).contains(&p[1]));
        }
    }

    #[test]
    fn converges_near_optimum_with_budget() {
        let mut rs = RandomSearch::new(space(), 2);
        let h = minimize(&mut rs, 300, |p| p[0] * p[0]);
        assert!(h.best().unwrap().objective < 0.05);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a: Vec<Vec<f64>> = {
            let mut rs = RandomSearch::new(space(), 3);
            (0..5).map(|_| rs.ask()).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut rs = RandomSearch::new(space(), 4);
            (0..5).map(|_| rs.ask()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_replays() {
        let a: Vec<Vec<f64>> = {
            let mut rs = RandomSearch::new(space(), 5);
            (0..5).map(|_| rs.ask()).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut rs = RandomSearch::new(space(), 5);
            (0..5).map(|_| rs.ask()).collect()
        };
        assert_eq!(a, b);
    }
}
