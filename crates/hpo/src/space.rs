//! Hyperparameter search spaces.

use varbench_rng::Rng;

/// One dimension of a search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dim {
    /// Uniform over `[lo, hi]` (the paper's `lin(lo, hi)` ranges, e.g.
    /// momentum in Table 2).
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform over `[lo, hi]`, `lo > 0` (the paper's `log(lo, hi)`
    /// ranges, e.g. learning rate and weight decay).
    LogUniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Uniform integer in `[lo, hi]` inclusive (e.g. hidden layer size in
    /// Table 6).
    Integer {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl Dim {
    /// Creates a uniform dimension.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or bounds are not finite.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "need finite lo < hi"
        );
        Dim::Uniform { lo, hi }
    }

    /// Creates a log-uniform dimension.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0` or `lo >= hi`.
    pub fn log_uniform(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo < hi && hi.is_finite(), "need 0 < lo < hi");
        Dim::LogUniform { lo, hi }
    }

    /// Creates an integer dimension.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn integer(lo: i64, hi: i64) -> Self {
        assert!(lo < hi, "need lo < hi");
        Dim::Integer { lo, hi }
    }

    /// Samples a value uniformly (respecting the dimension's scale).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dim::Uniform { lo, hi } => rng.uniform(lo, hi),
            Dim::LogUniform { lo, hi } => rng.log_uniform(lo, hi),
            Dim::Integer { lo, hi } => rng.range_inclusive(lo, hi) as f64,
        }
    }

    /// Clamps `v` into the dimension's bounds (integers also round).
    pub fn clamp(&self, v: f64) -> f64 {
        match *self {
            Dim::Uniform { lo, hi } => v.clamp(lo, hi),
            Dim::LogUniform { lo, hi } => v.clamp(lo, hi),
            Dim::Integer { lo, hi } => v.round().clamp(lo as f64, hi as f64),
        }
    }

    /// Maps a value to `[0, 1]` (log scale for log-uniform dims) — the
    /// normalization used by the GP surrogate.
    pub fn to_unit(&self, v: f64) -> f64 {
        match *self {
            Dim::Uniform { lo, hi } => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
            Dim::LogUniform { lo, hi } => {
                ((v.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
            }
            Dim::Integer { lo, hi } => ((v - lo as f64) / (hi - lo) as f64).clamp(0.0, 1.0),
        }
    }

    /// Inverse of [`Dim::to_unit`].
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match *self {
            // Clamp the continuous arms: float rounding can overshoot the
            // bounds (e.g. exp(ln(100)) > 100), and callers rely on
            // `from_unit` landing inside the dimension.
            Dim::Uniform { lo, hi } => (lo + u * (hi - lo)).clamp(lo, hi),
            Dim::LogUniform { lo, hi } => (lo.ln() + u * (hi.ln() - lo.ln())).exp().clamp(lo, hi),
            Dim::Integer { lo, hi } => (lo as f64 + u * (hi - lo) as f64).round(),
        }
    }

    /// `n` evenly spaced values spanning the dimension (log-spaced for
    /// log-uniform dims) — the grid of Appendix E.1.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn grid(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "grid needs at least 2 points");
        (0..n)
            .map(|i| self.from_unit(i as f64 / (n - 1) as f64))
            .collect()
    }
}

/// A named, ordered collection of search dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    dims: Vec<(String, Dim)>,
}

impl SearchSpace {
    /// Creates a search space from named dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or names repeat.
    pub fn new(dims: Vec<(String, Dim)>) -> Self {
        assert!(!dims.is_empty(), "search space must have dimensions");
        for i in 0..dims.len() {
            for j in (i + 1)..dims.len() {
                assert_ne!(
                    dims[i].0, dims[j].0,
                    "duplicate dimension name {}",
                    dims[i].0
                );
            }
        }
        Self { dims }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space has no dimensions (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimension names in order.
    pub fn names(&self) -> Vec<&str> {
        self.dims.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[(String, Dim)] {
        &self.dims
    }

    /// Samples a full parameter vector.
    pub fn sample(&self, rng: &mut Rng) -> Vec<f64> {
        self.dims.iter().map(|(_, d)| d.sample(rng)).collect()
    }

    /// Clamps every coordinate into bounds.
    pub fn clamp(&self, params: &[f64]) -> Vec<f64> {
        assert_eq!(params.len(), self.len(), "parameter arity mismatch");
        self.dims
            .iter()
            .zip(params)
            .map(|((_, d), &v)| d.clamp(v))
            .collect()
    }

    /// Maps a parameter vector to the unit cube.
    pub fn to_unit(&self, params: &[f64]) -> Vec<f64> {
        assert_eq!(params.len(), self.len(), "parameter arity mismatch");
        self.dims
            .iter()
            .zip(params)
            .map(|((_, d), &v)| d.to_unit(v))
            .collect()
    }

    /// Maps a unit-cube vector back to parameter values.
    pub fn from_unit(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.len(), "parameter arity mismatch");
        self.dims
            .iter()
            .zip(unit)
            .map(|((_, d), &u)| d.from_unit(u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_respects_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        let dims = [
            Dim::uniform(-1.0, 2.0),
            Dim::log_uniform(1e-5, 1e-1),
            Dim::integer(3, 9),
        ];
        for _ in 0..2000 {
            let v0 = dims[0].sample(&mut rng);
            assert!((-1.0..2.0).contains(&v0));
            let v1 = dims[1].sample(&mut rng);
            assert!((1e-5..1e-1).contains(&v1));
            let v2 = dims[2].sample(&mut rng);
            assert!((3.0..=9.0).contains(&v2));
            assert_eq!(v2, v2.round());
        }
    }

    #[test]
    fn unit_roundtrip_continuous() {
        let dims = [Dim::uniform(-1.0, 2.0), Dim::log_uniform(1e-5, 1e-1)];
        for d in dims {
            for &u in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = d.from_unit(u);
                let u2 = d.to_unit(v);
                assert!((u - u2).abs() < 1e-9, "{d:?} u={u} -> v={v} -> {u2}");
            }
        }
    }

    #[test]
    fn unit_roundtrip_integer_values() {
        // Integers round in from_unit, so the exact roundtrip property is
        // value-side: every integer value maps to a unit coordinate and back
        // to itself.
        let d = Dim::integer(0, 10);
        for v in 0..=10 {
            let v = v as f64;
            assert_eq!(d.from_unit(d.to_unit(v)), v);
        }
    }

    #[test]
    fn log_grid_is_geometric() {
        let g = Dim::log_uniform(1e-4, 1e0).grid(5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1e-4).abs() < 1e-12);
        assert!((g[4] - 1.0).abs() < 1e-9);
        // Ratios equal in a geometric progression.
        let r1 = g[1] / g[0];
        let r2 = g[2] / g[1];
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn linear_grid_is_arithmetic() {
        let g = Dim::uniform(0.0, 1.0).grid(3);
        assert_eq!(g, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn integer_grid_rounds() {
        let g = Dim::integer(1, 5).grid(5);
        assert_eq!(g, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(Dim::uniform(0.0, 1.0).clamp(2.0), 1.0);
        assert_eq!(Dim::integer(0, 10).clamp(3.7), 4.0);
        assert_eq!(Dim::log_uniform(0.1, 1.0).clamp(0.01), 0.1);
    }

    #[test]
    fn space_sample_and_maps() {
        let space = SearchSpace::new(vec![
            ("lr".into(), Dim::log_uniform(1e-3, 0.3)),
            ("mom".into(), Dim::uniform(0.5, 0.99)),
        ]);
        let mut rng = Rng::seed_from_u64(2);
        let p = space.sample(&mut rng);
        assert_eq!(p.len(), 2);
        let u = space.to_unit(&p);
        let back = space.from_unit(&u);
        assert!((p[0] - back[0]).abs() / p[0] < 1e-9);
        assert!((p[1] - back[1]).abs() < 1e-9);
        assert_eq!(space.names(), vec!["lr", "mom"]);
    }

    #[test]
    #[should_panic(expected = "duplicate dimension name")]
    fn duplicate_names_rejected() {
        SearchSpace::new(vec![
            ("a".into(), Dim::uniform(0.0, 1.0)),
            ("a".into(), Dim::uniform(0.0, 1.0)),
        ]);
    }
}
