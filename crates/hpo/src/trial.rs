//! Trials, histories, and the ask/tell optimization driver.

/// One evaluated hyperparameter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Parameter vector (ordered as in the search space).
    pub params: Vec<f64>,
    /// Objective value (lower is better — the paper optimizes validation
    /// error / regret).
    pub objective: f64,
}

/// The sequence of trials produced by one HPO run.
///
/// Provides the best-so-far curve plotted in the paper's Fig. F.2.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    trials: Vec<Trial>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a trial.
    pub fn push(&mut self, trial: Trial) {
        self.trials.push(trial);
    }

    /// All trials in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The best (lowest-objective) trial, if any. NaN objectives are
    /// ranked last.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| !t.objective.is_nan())
            .min_by(|a, b| a.objective.partial_cmp(&b.objective).expect("NaN filtered"))
    }

    /// Best objective value observed up to and including each trial — the
    /// optimization curve of Fig. F.2.
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.trials
            .iter()
            .map(|t| {
                if t.objective < best {
                    best = t.objective;
                }
                best
            })
            .collect()
    }
}

/// An ask/tell hyperparameter optimizer.
///
/// Implementations are deterministic given their construction seed; all
/// stochasticity is part of the ξ_H variance source.
pub trait Optimizer {
    /// Proposes the next configuration to evaluate.
    fn ask(&mut self) -> Vec<f64>;

    /// Reports the objective for a configuration returned by
    /// [`Optimizer::ask`].
    fn tell(&mut self, params: &[f64], objective: f64);
}

/// Runs `budget` ask/evaluate/tell rounds of `optimizer` against
/// `objective`, returning the trial history.
///
/// # Panics
///
/// Panics if `budget == 0`.
///
/// # Example
///
/// See the crate-level example.
pub fn minimize(
    optimizer: &mut dyn Optimizer,
    budget: usize,
    mut objective: impl FnMut(&[f64]) -> f64,
) -> History {
    assert!(budget > 0, "budget must be > 0");
    let mut history = History::new();
    for _ in 0..budget {
        let params = optimizer.ask();
        let value = objective(&params);
        optimizer.tell(&params, value);
        history.push(Trial {
            params,
            objective: value,
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(obj: f64) -> Trial {
        Trial {
            params: vec![0.0],
            objective: obj,
        }
    }

    #[test]
    fn best_and_curve() {
        let mut h = History::new();
        for o in [3.0, 1.0, 2.0, 0.5, 4.0] {
            h.push(trial(o));
        }
        assert_eq!(h.best().unwrap().objective, 0.5);
        assert_eq!(h.best_so_far(), vec![3.0, 1.0, 1.0, 0.5, 0.5]);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.is_empty());
        assert!(h.best().is_none());
        assert!(h.best_so_far().is_empty());
    }

    #[test]
    fn nan_objectives_not_best() {
        let mut h = History::new();
        h.push(trial(f64::NAN));
        h.push(trial(1.0));
        assert_eq!(h.best().unwrap().objective, 1.0);
    }

    struct FixedAsk(Vec<f64>);
    impl Optimizer for FixedAsk {
        fn ask(&mut self) -> Vec<f64> {
            self.0.clone()
        }
        fn tell(&mut self, _params: &[f64], _objective: f64) {}
    }

    #[test]
    fn minimize_drives_budget() {
        let mut opt = FixedAsk(vec![2.0]);
        let h = minimize(&mut opt, 7, |p| p[0] * p[0]);
        assert_eq!(h.len(), 7);
        assert_eq!(h.best().unwrap().objective, 4.0);
    }

    #[test]
    #[should_panic(expected = "budget must be > 0")]
    fn zero_budget_panics() {
        let mut opt = FixedAsk(vec![0.0]);
        minimize(&mut opt, 0, |_| 0.0);
    }
}
