//! Bayesian optimization with a Gaussian-process surrogate and Expected
//! Improvement, built from scratch on `varbench-linalg`.
//!
//! The paper used RoBO (Klein et al., 2017) and noted it offered "no
//! support for seeding" (Appendix A) — every stochastic choice here (initial
//! design, candidate sampling, GP-hyperparameter selection ties) flows from
//! one constructor seed instead.

use crate::space::SearchSpace;
use crate::trial::Optimizer;
use varbench_linalg::{Cholesky, Matrix};
use varbench_rng::Rng;

/// Configuration of [`BayesOpt`].
#[derive(Debug, Clone, PartialEq)]
pub struct BayesOptConfig {
    /// Number of random trials before the GP takes over.
    pub n_init: usize,
    /// Number of random candidates scored by Expected Improvement per
    /// `ask`.
    pub n_candidates: usize,
    /// Candidate lengthscales (unit-cube scale) tried by marginal-likelihood
    /// selection at each refit.
    pub lengthscales: Vec<f64>,
    /// Observation-noise variance as a fraction of the observed objective
    /// variance.
    pub noise_fraction: f64,
    /// Exploration bonus ξ in the EI criterion.
    pub xi: f64,
}

impl Default for BayesOptConfig {
    fn default() -> Self {
        Self {
            n_init: 5,
            n_candidates: 256,
            lengthscales: vec![0.1, 0.2, 0.35, 0.6, 1.0],
            noise_fraction: 1e-3,
            xi: 0.01,
        }
    }
}

/// Gaussian-process Bayesian optimization (Matérn-5/2 kernel, Expected
/// Improvement acquisition).
///
/// # Example
///
/// ```
/// use varbench_hpo::{minimize, BayesOpt, BayesOptConfig, Dim, SearchSpace};
///
/// let space = SearchSpace::new(vec![("x".into(), Dim::uniform(-3.0, 3.0))]);
/// let mut opt = BayesOpt::new(space, BayesOptConfig::default(), 7);
/// let history = minimize(&mut opt, 30, |p| (p[0] - 1.0).powi(2));
/// assert!(history.best().unwrap().objective < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct BayesOpt {
    space: SearchSpace,
    config: BayesOptConfig,
    rng: Rng,
    /// Observed points in unit-cube coordinates.
    x: Vec<Vec<f64>>,
    /// Observed objectives.
    y: Vec<f64>,
}

impl BayesOpt {
    /// Creates a Bayesian optimizer over `space`, fully seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (no candidates, no lengthscales,
    /// or a non-positive lengthscale).
    pub fn new(space: SearchSpace, config: BayesOptConfig, seed: u64) -> Self {
        assert!(config.n_candidates > 0, "need candidates to score");
        assert!(
            !config.lengthscales.is_empty(),
            "need candidate lengthscales"
        );
        assert!(
            config.lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive"
        );
        assert!(config.noise_fraction >= 0.0, "noise_fraction must be >= 0");
        Self {
            space,
            config,
            rng: Rng::seed_from_u64(seed),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Number of observations absorbed so far.
    pub fn observations(&self) -> usize {
        self.y.len()
    }
}

impl Optimizer for BayesOpt {
    fn ask(&mut self) -> Vec<f64> {
        if self.y.len() < self.config.n_init {
            return self.space.sample(&mut self.rng);
        }
        let gp = match Gp::fit(&self.x, &self.y, &self.config) {
            Some(gp) => gp,
            // Degenerate geometry (e.g. all objectives identical): explore.
            None => return self.space.sample(&mut self.rng),
        };
        let best_y = self.y.iter().cloned().fold(f64::INFINITY, f64::min);

        // Draw every candidate up front into one flat slab (one allocation
        // per `ask` instead of one per candidate), in the exact RNG order
        // of the old per-candidate loop: candidate-major, every 4th row a
        // local perturbation of the incumbent, the rest uniform.
        let dim = self.space.len();
        let nc = self.config.n_candidates;
        let incumbent = argmin(&self.y);
        let mut cand = vec![0.0; nc * dim];
        for c in 0..nc {
            let row = &mut cand[c * dim..(c + 1) * dim];
            // Mix global exploration with local perturbations of the
            // incumbent (a cheap trust-region flavor).
            match incumbent {
                Some(i) if c % 4 == 0 => {
                    for (slot, &v) in row.iter_mut().zip(&self.x[i]) {
                        *slot = (v + self.rng.normal(0.0, 0.08)).clamp(0.0, 1.0);
                    }
                }
                _ => {
                    for slot in row.iter_mut() {
                        *slot = self.rng.next_f64();
                    }
                }
            }
        }
        // Score the whole slab through the batched GP posterior (kernel
        // slab + one batched triangular solve), then pick the EI winner.
        let mut scratch = GpScratch::default();
        gp.predict_batch_with(&cand, dim, &mut scratch);
        let mut best_ei = f64::NEG_INFINITY;
        let mut best_c: Option<usize> = None;
        for c in 0..nc {
            let (mu, var) = (scratch.mu[c], scratch.var[c]);
            let ei = expected_improvement(mu, var.max(0.0).sqrt(), best_y, self.config.xi);
            if ei > best_ei {
                best_ei = ei;
                best_c = Some(c);
            }
        }
        let c = best_c.expect("at least one candidate scored");
        self.space.from_unit(&cand[c * dim..(c + 1) * dim])
    }

    fn tell(&mut self, params: &[f64], objective: f64) {
        // Failed evaluations (NaN/inf objectives, e.g. diverged trainings)
        // are recorded as a pessimistic-but-finite value so the GP stays
        // well-posed and keeps avoiding that region.
        let objective = if objective.is_finite() {
            objective
        } else {
            let worst = self.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if worst.is_finite() {
                worst + 3.0 * (worst.abs() + 1.0)
            } else {
                1e6
            }
        };
        self.x.push(self.space.to_unit(params));
        self.y.push(objective);
    }
}

fn argmin(y: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &v) in y.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if v < y[b] => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Expected improvement (for minimization) with exploration bonus `xi`.
fn expected_improvement(mu: f64, sigma: f64, best: f64, xi: f64) -> f64 {
    if sigma <= 1e-12 {
        return (best - mu - xi).max(0.0);
    }
    let z = (best - mu - xi) / sigma;
    let phi = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let big_phi = 0.5 * (1.0 + erf_approx(z / std::f64::consts::SQRT_2));
    (best - mu - xi) * big_phi + sigma * phi
}

/// Abramowitz–Stegun 7.1.26 erf approximation (|ε| < 1.5e-7) — plenty for
/// an acquisition function and avoids a heavier dependency here.
fn erf_approx(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A fitted Gaussian process (zero mean on standardized targets).
struct Gp {
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    lengthscale: f64,
    amplitude: f64,
    y_mean: f64,
    y_std: f64,
}

/// Reusable scratch for the GP posterior: the kernel vector(s) `k*` and
/// the triangular-solve output, plus the per-candidate mean/variance the
/// batched path fills. In batch use `k_star`/`v` hold `count × n`
/// candidate-major slabs.
#[derive(Debug, Clone, Default)]
struct GpScratch {
    k_star: Vec<f64>,
    v: Vec<f64>,
    mu: Vec<f64>,
    var: Vec<f64>,
}

impl Gp {
    /// Fits a GP, selecting the lengthscale by marginal likelihood over the
    /// configured candidates. Returns `None` if no candidate produces a
    /// positive-definite kernel (pathological duplicate-heavy geometry).
    fn fit(x: &[Vec<f64>], y: &[f64], config: &BayesOptConfig) -> Option<Gp> {
        let n = y.len();
        if n < 2 {
            return None;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-12);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let noise = config.noise_fraction.max(1e-9);

        // Keep only the winning (mll, lengthscale, factor, alpha); the
        // observation matrix is cloned once for the winner, not per
        // candidate lengthscale.
        let mut best: Option<(f64, f64, Cholesky, Vec<f64>)> = None;
        for &ls in &config.lengthscales {
            let mut k = Matrix::from_fn(n, n, |i, j| matern52(&x[i], &x[j], ls));
            k.add_diagonal(noise);
            let chol = match Cholesky::new_with_jitter(&k, 1e-10, 8) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let alpha = chol.solve(&ys);
            // Marginal log likelihood (up to constants).
            let fit_term: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
            let mll = -0.5 * fit_term - 0.5 * chol.log_det();
            match &best {
                Some((best_mll, ..)) if mll <= *best_mll => {}
                _ => best = Some((mll, ls, chol, alpha)),
            }
        }
        best.map(|(_, lengthscale, chol, alpha)| Gp {
            x: x.to_vec(),
            alpha,
            chol,
            lengthscale,
            amplitude: 1.0,
            y_mean,
            y_std,
        })
    }

    /// Posterior mean and variance at `u` (original objective scale).
    #[cfg(test)]
    fn predict(&self, u: &[f64]) -> (f64, f64) {
        self.predict_with(u, &mut GpScratch::default())
    }

    /// [`Gp::predict`] with reused scratch buffers — allocation-free once
    /// the scratch is warm. The reference single-candidate path; the
    /// acquisition loop now goes through [`Gp::predict_batch_with`], which
    /// is pinned bitwise to this one by test.
    #[cfg(test)]
    fn predict_with(&self, u: &[f64], scratch: &mut GpScratch) -> (f64, f64) {
        scratch.k_star.clear();
        scratch
            .k_star
            .extend(self.x.iter().map(|xi| matern52(xi, u, self.lengthscale)));
        let mu_std: f64 = scratch
            .k_star
            .iter()
            .zip(&self.alpha)
            .map(|(a, b)| a * b)
            .sum();
        self.chol.solve_lower_into(&scratch.k_star, &mut scratch.v);
        let var_std = (self.amplitude - scratch.v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (
            self.y_mean + self.y_std * mu_std,
            self.y_std * self.y_std * var_std,
        )
    }

    /// Batched posterior over `cand` (`count × dim` candidate-major unit
    /// coordinates), filling `scratch.mu`/`scratch.var`.
    ///
    /// Per candidate the computation is the exact chain of
    /// [`Gp::predict_with`] — kernel row in ascending observation order,
    /// `k*·α` summed from `0.0` ascending, one triangular solve (batched
    /// across candidates by [`Cholesky::solve_lower_batch_into`], which
    /// leaves each candidate's elimination chain untouched), `Σ v²`
    /// ascending — so the results are bitwise identical to calling the
    /// single-candidate path `count` times.
    ///
    /// # Panics
    ///
    /// Panics if `cand.len()` is not a multiple of `dim`.
    // lint: no-alloc
    fn predict_batch_with(&self, cand: &[f64], dim: usize, scratch: &mut GpScratch) {
        assert_eq!(cand.len() % dim, 0, "candidate slab shape mismatch");
        let count = cand.len() / dim;
        let n = self.x.len();
        scratch.k_star.clear();
        scratch.k_star.resize(count * n, 0.0);
        scratch.mu.clear();
        scratch.mu.resize(count, 0.0);
        scratch.var.clear();
        scratch.var.resize(count, 0.0);
        for c in 0..count {
            let u = &cand[c * dim..(c + 1) * dim];
            let ks = &mut scratch.k_star[c * n..(c + 1) * n];
            for (slot, xi) in ks.iter_mut().zip(&self.x) {
                *slot = matern52(xi, u, self.lengthscale);
            }
            let mut mu_std = 0.0;
            for (a, b) in ks.iter().zip(&self.alpha) {
                mu_std += a * b;
            }
            scratch.mu[c] = self.y_mean + self.y_std * mu_std;
        }
        self.chol
            .solve_lower_batch_into(&scratch.k_star, count, &mut scratch.v);
        for c in 0..count {
            let mut s2 = 0.0;
            for v in &scratch.v[c * n..(c + 1) * n] {
                s2 += v * v;
            }
            scratch.var[c] = self.y_std * self.y_std * (self.amplitude - s2).max(0.0);
        }
    }
}

/// Matérn-5/2 kernel on unit-cube coordinates with isotropic lengthscale.
fn matern52(a: &[f64], b: &[f64], lengthscale: f64) -> f64 {
    let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let r = r2.sqrt() / lengthscale;
    let sqrt5_r = 5.0_f64.sqrt() * r;
    (1.0 + sqrt5_r + 5.0 * r2 / (3.0 * lengthscale * lengthscale)) * (-sqrt5_r).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;
    use crate::trial::minimize;

    fn space1() -> SearchSpace {
        SearchSpace::new(vec![("x".into(), Dim::uniform(-3.0, 3.0))])
    }

    #[test]
    fn kernel_properties() {
        let a = [0.2, 0.4];
        let b = [0.8, 0.1];
        // Symmetry, unit diagonal, decay with distance.
        assert!((matern52(&a, &b, 0.3) - matern52(&b, &a, 0.3)).abs() < 1e-15);
        assert!((matern52(&a, &a, 0.3) - 1.0).abs() < 1e-15);
        let near = matern52(&[0.0], &[0.05], 0.3);
        let far = matern52(&[0.0], &[0.9], 0.3);
        assert!(near > far);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let x: Vec<Vec<f64>> = vec![vec![0.1], vec![0.4], vec![0.7], vec![0.95]];
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        let gp = Gp::fit(&x, &y, &BayesOptConfig::default()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (mu, var) = gp.predict(xi);
            assert!((mu - yi).abs() < 0.05, "mu {mu} vs {yi}");
            assert!(var < 0.1, "training-point variance {var}");
        }
        // Extrapolation carries more uncertainty than interpolation at a
        // training point.
        let (_, var_far) = gp.predict(&[0.0]);
        let (_, var_at) = gp.predict(&[0.4]);
        assert!(var_far > var_at);
    }

    #[test]
    fn gp_batch_predict_matches_single_bitwise() {
        // 5 observations × 2 dims, 7 candidates (odd count exercises any
        // batching remainder); the batched posterior must agree bit for
        // bit with the single-candidate reference path.
        let x: Vec<Vec<f64>> = vec![
            vec![0.10, 0.90],
            vec![0.40, 0.20],
            vec![0.70, 0.50],
            vec![0.95, 0.30],
            vec![0.33, 0.66],
        ];
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin() + p[1]).collect();
        let gp = Gp::fit(&x, &y, &BayesOptConfig::default()).unwrap();
        let dim = 2;
        let nc = 7;
        let cand: Vec<f64> = (0..nc * dim)
            .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
            .collect();
        let mut batch = GpScratch::default();
        gp.predict_batch_with(&cand, dim, &mut batch);
        let mut single = GpScratch::default();
        for c in 0..nc {
            let (mu, var) = gp.predict_with(&cand[c * dim..(c + 1) * dim], &mut single);
            assert_eq!(mu.to_bits(), batch.mu[c].to_bits(), "mu @{c}");
            assert_eq!(var.to_bits(), batch.var[c].to_bits(), "var @{c}");
        }
    }

    #[test]
    fn ei_prefers_low_mean_and_high_uncertainty() {
        let ei_good_mean = expected_improvement(0.0, 0.1, 0.5, 0.0);
        let ei_bad_mean = expected_improvement(1.0, 0.1, 0.5, 0.0);
        assert!(ei_good_mean > ei_bad_mean);
        let ei_uncertain = expected_improvement(0.6, 0.5, 0.5, 0.0);
        let ei_certain = expected_improvement(0.6, 0.01, 0.5, 0.0);
        assert!(ei_uncertain > ei_certain);
    }

    #[test]
    fn ei_zero_sigma_fallback() {
        assert_eq!(expected_improvement(1.0, 0.0, 0.5, 0.0), 0.0);
        assert!((expected_improvement(0.2, 0.0, 0.5, 0.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bayesopt_beats_random_prefix_on_smooth_objective() {
        // On a smooth 1-d quadratic, 30 BO trials should land much closer
        // to the optimum than its own 5 random warm-up trials.
        let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), 1);
        let h = minimize(&mut opt, 30, |p| (p[0] - 1.0).powi(2));
        let warmup_best = h.trials()[..5]
            .iter()
            .map(|t| t.objective)
            .fold(f64::INFINITY, f64::min);
        let final_best = h.best().unwrap().objective;
        assert!(final_best < 0.1, "final best {final_best}");
        assert!(final_best <= warmup_best);
    }

    #[test]
    fn bayesopt_is_deterministic_given_seed() {
        let run = |seed: u64| {
            let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), seed);
            minimize(&mut opt, 15, |p| p[0].cos() + 0.1 * p[0])
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn bayesopt_handles_constant_objective() {
        let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), 2);
        let h = minimize(&mut opt, 12, |_| 1.0);
        assert_eq!(h.len(), 12);
        assert_eq!(h.best().unwrap().objective, 1.0);
    }

    #[test]
    fn bayesopt_multidim_log_space() {
        let space = SearchSpace::new(vec![
            ("lr".into(), Dim::log_uniform(1e-4, 1e0)),
            ("mom".into(), Dim::uniform(0.0, 1.0)),
        ]);
        let mut opt = BayesOpt::new(space, BayesOptConfig::default(), 3);
        // Optimum at lr = 1e-2, mom = 0.9.
        let h = minimize(&mut opt, 40, |p| {
            (p[0].ln() - 1e-2f64.ln()).powi(2) / 10.0 + (p[1] - 0.9).powi(2)
        });
        assert!(
            h.best().unwrap().objective < 0.3,
            "{}",
            h.best().unwrap().objective
        );
    }

    #[test]
    fn survives_nan_objectives() {
        // Failure injection: a quarter of evaluations "diverge".
        let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), 11);
        let h = minimize(&mut opt, 24, |p| {
            if p[0] > 2.0 {
                f64::NAN
            } else {
                (p[0] - 1.0).powi(2)
            }
        });
        assert_eq!(h.len(), 24);
        let best = h.best().unwrap();
        assert!(best.objective.is_finite());
        assert!(best.objective < 0.5, "best {}", best.objective);
    }

    #[test]
    fn survives_infinite_objectives() {
        let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), 12);
        let h = minimize(&mut opt, 15, |p| {
            if p[0] < -2.0 {
                f64::INFINITY
            } else {
                p[0].abs()
            }
        });
        assert!(h.best().unwrap().objective.is_finite());
    }

    #[test]
    fn observations_counter() {
        let mut opt = BayesOpt::new(space1(), BayesOptConfig::default(), 4);
        assert_eq!(opt.observations(), 0);
        let p = opt.ask();
        opt.tell(&p, 1.0);
        assert_eq!(opt.observations(), 1);
    }
}
