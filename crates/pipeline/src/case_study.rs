//! The five case-study pipelines.
//!
//! Each constructor mirrors one of the paper's Appendix D setups:
//! the data pool is fixed (like CIFAR10 is fixed), the split protocol is
//! out-of-bootstrap (stratified where the paper stratified), and the
//! hyperparameter search space mirrors the corresponding paper table.
//! Difficulty parameters (class separation, label noise) were calibrated so
//! the default-hyperparameter test performance approximates the paper's
//! levels; measured values are recorded in `EXPERIMENTS.md`.

use crate::measure::MetricKind;
use crate::variance::{SeedAssignment, VarianceSource};
use varbench_data::augment::{Augment, GaussianJitter, Identity};
use varbench_data::split::{oob_split, stratified_oob_split, Split};
use varbench_data::synth::{
    binary_overlap, binding_regression, gaussian_mixture, mask_task, BinaryOverlapConfig,
    BindingConfig, GaussianMixtureConfig, MaskTaskConfig,
};
use varbench_data::Dataset;
use varbench_hpo::{Dim, SearchSpace};
use varbench_models::{Init, Mlp, MlpConfig, TrainConfig};
use varbench_rng::Rng;

/// Experiment scale: how big the pools and training budgets are.
///
/// The paper's study consumed ~8 GPU-years; `Scale` lets every experiment
/// run at a laptop-friendly size while keeping the full-size protocol one
/// flag away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny: for unit and integration tests (seconds).
    Test,
    /// Default for the figure harness (minutes for the full suite).
    Quick,
    /// Paper-faithful sizes (test sets at the paper's n′, more epochs).
    Full,
}

impl Scale {
    /// Stable lowercase label (used in cache keys and CLI output).
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// How a case study splits its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitSpec {
    /// Stratified out-of-bootstrap with per-class sizes (the paper's
    /// CIFAR10 protocol).
    Stratified {
        /// Bootstrap draws per class for the train set.
        per_class_train: usize,
        /// Validation examples per class.
        per_class_valid: usize,
        /// Test examples per class.
        per_class_test: usize,
    },
    /// Plain out-of-bootstrap with absolute sizes.
    Plain {
        /// Bootstrap draws for the train set.
        n_train: usize,
        /// Validation set size.
        n_valid: usize,
        /// Test set size (the paper's n′).
        n_test: usize,
    },
}

impl SplitSpec {
    /// The test-set size n′ this spec produces.
    pub fn test_size(&self, num_classes: usize) -> usize {
        match *self {
            SplitSpec::Stratified { per_class_test, .. } => per_class_test * num_classes,
            SplitSpec::Plain { n_test, .. } => n_test,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AugmentKind {
    None,
    Jitter(f64),
}

impl AugmentKind {
    fn build(&self) -> Box<dyn Augment> {
        match *self {
            AugmentKind::None => Box::new(Identity),
            AugmentKind::Jitter(sigma) => Box::new(GaussianJitter::new(sigma)),
        }
    }
}

/// A complete, self-contained learning pipeline (paper §2.1) for one task.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    name: &'static str,
    scale: Scale,
    paper_task: &'static str,
    metric: MetricKind,
    pool: Dataset,
    split_spec: SplitSpec,
    arch: MlpConfig,
    base_train: TrainConfig,
    augment: AugmentKind,
    space: SearchSpace,
    defaults: Vec<f64>,
    /// Which variance sources are active in this pipeline (e.g. the BERT
    /// analogs have no data augmentation; only the PascalVOC analog has
    /// numerical noise).
    active_sources: Vec<VarianceSource>,
}

impl CaseStudy {
    /// The CIFAR10 + VGG11 analog (paper Appendix D.1).
    ///
    /// 10-class Gaussian-mixture classification; stratified
    /// out-of-bootstrap; jitter augmentation; Table 2-shaped search space
    /// (learning rate, weight decay, momentum, LR-decay γ).
    pub fn cifar10_vgg11(scale: Scale) -> CaseStudy {
        let (per_class_pool, per_class_train, per_class_valid, per_class_test, epochs) = match scale
        {
            Scale::Test => (80, 40, 10, 10, 3),
            Scale::Quick => (700, 350, 100, 100, 10),
            Scale::Full => (6000, 4000, 1000, 1000, 30),
        };
        let mut pool_rng = Rng::seed_from_u64(0xC1FA2010);
        let pool = gaussian_mixture(
            &GaussianMixtureConfig {
                num_classes: 10,
                dim: 16,
                n_per_class: per_class_pool,
                class_sep: 3.6,
                within_std: 1.0,
                label_noise: 0.02,
            },
            &mut pool_rng,
        );
        let space = SearchSpace::new(vec![
            ("learning_rate".into(), Dim::log_uniform(1e-3, 0.3)),
            ("weight_decay".into(), Dim::log_uniform(1e-6, 1e-2)),
            ("momentum".into(), Dim::uniform(0.5, 0.99)),
            ("lr_gamma".into(), Dim::uniform(0.90, 0.999)),
        ]);
        CaseStudy {
            name: "cifar10-vgg11",
            scale,
            paper_task: "CIFAR10 image classification, VGG11",
            metric: MetricKind::Accuracy,
            pool,
            split_spec: SplitSpec::Stratified {
                per_class_train,
                per_class_valid,
                per_class_test,
            },
            arch: MlpConfig {
                hidden: vec![24],
                init: Init::GlorotUniform,
            },
            base_train: TrainConfig {
                epochs,
                batch_size: 32,
                learning_rate: 0.03,
                momentum: 0.9,
                weight_decay: 0.002,
                lr_gamma: 0.97,
                dropout: 0.0,
                grad_noise: 0.0,
            },
            augment: AugmentKind::Jitter(0.3),
            space,
            defaults: vec![0.03, 0.002, 0.9, 0.97],
            active_sources: vec![
                VarianceSource::DataSplit,
                VarianceSource::DataAugment,
                VarianceSource::WeightsInit,
                VarianceSource::DataOrder,
                VarianceSource::HyperOpt,
            ],
        }
    }

    /// The Glue-RTE + BERT analog (paper Appendix D.3): small-data,
    /// high-overlap binary task; dropout head; Table 3-shaped search space
    /// (learning rate, weight decay, init std).
    pub fn glue_rte_bert(scale: Scale) -> CaseStudy {
        let (n_pool, n_train, n_valid, n_test, epochs) = match scale {
            Scale::Test => (300, 180, 40, 40, 3),
            Scale::Quick => (2500, 1800, 250, 277, 12),
            Scale::Full => (2500, 1800, 250, 277, 30),
        };
        let mut pool_rng = Rng::seed_from_u64(0x47E02009);
        let pool = binary_overlap(
            &BinaryOverlapConfig {
                n: n_pool,
                dim: 16,
                separation: 1.35,
                label_noise: 0.12,
                p_positive: 0.5,
            },
            &mut pool_rng,
        );
        CaseStudy {
            name: "glue-rte-bert",
            scale,
            paper_task: "Glue-RTE entailment, BERT",
            metric: MetricKind::Accuracy,
            pool,
            split_spec: SplitSpec::Plain {
                n_train,
                n_valid,
                n_test,
            },
            arch: MlpConfig {
                hidden: vec![16],
                init: Init::Normal { std: 0.2 },
            },
            base_train: TrainConfig {
                epochs,
                batch_size: 32,
                learning_rate: 0.03,
                momentum: 0.9,
                weight_decay: 1e-4,
                lr_gamma: 0.99,
                dropout: 0.1,
                grad_noise: 0.0,
            },
            augment: AugmentKind::None,
            space: bert_like_space(),
            defaults: vec![0.03, 1e-4, 0.2],
            active_sources: vec![
                VarianceSource::DataSplit,
                VarianceSource::WeightsInit,
                VarianceSource::DataOrder,
                VarianceSource::Dropout,
                VarianceSource::HyperOpt,
            ],
        }
    }

    /// The Glue-SST2 + BERT analog (paper Appendix D.2): large,
    /// well-separated binary task.
    pub fn glue_sst2_bert(scale: Scale) -> CaseStudy {
        let (n_pool, n_train, n_valid, n_test, epochs) = match scale {
            Scale::Test => (400, 250, 50, 50, 3),
            Scale::Quick => (9000, 6500, 800, 872, 5),
            Scale::Full => (9000, 6500, 800, 872, 15),
        };
        let mut pool_rng = Rng::seed_from_u64(0x5572013);
        let pool = binary_overlap(
            &BinaryOverlapConfig {
                n: n_pool,
                dim: 16,
                separation: 3.8,
                label_noise: 0.015,
                p_positive: 0.55,
            },
            &mut pool_rng,
        );
        CaseStudy {
            name: "glue-sst2-bert",
            scale,
            paper_task: "Glue-SST2 sentiment, BERT",
            metric: MetricKind::Accuracy,
            pool,
            split_spec: SplitSpec::Plain {
                n_train,
                n_valid,
                n_test,
            },
            arch: MlpConfig {
                hidden: vec![16],
                init: Init::Normal { std: 0.2 },
            },
            base_train: TrainConfig {
                epochs,
                batch_size: 32,
                learning_rate: 0.03,
                momentum: 0.9,
                weight_decay: 1e-4,
                lr_gamma: 0.99,
                dropout: 0.1,
                grad_noise: 0.0,
            },
            augment: AugmentKind::None,
            space: bert_like_space(),
            defaults: vec![0.03, 1e-4, 0.2],
            active_sources: vec![
                VarianceSource::DataSplit,
                VarianceSource::WeightsInit,
                VarianceSource::DataOrder,
                VarianceSource::Dropout,
                VarianceSource::HyperOpt,
            ],
        }
    }

    /// The PascalVOC + FCN/ResNet18 analog (paper Appendix D.4): dense
    /// mask prediction scored by mean IoU, with residual numerical noise
    /// (the one pipeline the paper could not make perfectly reproducible).
    pub fn pascal_voc_resnet(scale: Scale) -> CaseStudy {
        let (n_pool, n_train, n_valid, n_test, epochs) = match scale {
            Scale::Test => (250, 120, 40, 40, 3),
            Scale::Quick => (1600, 800, 300, 300, 12),
            Scale::Full => (2913, 2184, 364, 365, 30),
        };
        let mut pool_rng = Rng::seed_from_u64(0xA5C02012);
        let pool = mask_task(
            &MaskTaskConfig {
                n: n_pool,
                dim: 24,
                latent_dim: 6,
                mask_len: 64,
                feature_noise: 0.8,
            },
            &mut pool_rng,
        );
        let space = SearchSpace::new(vec![
            ("learning_rate".into(), Dim::log_uniform(1e-3, 0.1)),
            ("momentum".into(), Dim::uniform(0.5, 0.99)),
            ("weight_decay".into(), Dim::log_uniform(1e-8, 1e-2)),
        ]);
        CaseStudy {
            name: "pascalvoc-resnet",
            scale,
            paper_task: "PascalVOC segmentation, FCN + ResNet18",
            metric: MetricKind::MeanIou,
            pool,
            split_spec: SplitSpec::Plain {
                n_train,
                n_valid,
                n_test,
            },
            arch: MlpConfig {
                hidden: vec![32],
                init: Init::GlorotUniform,
            },
            base_train: TrainConfig {
                epochs,
                batch_size: 16,
                learning_rate: 0.02,
                momentum: 0.9,
                weight_decay: 1e-6,
                lr_gamma: 0.99,
                dropout: 0.0,
                grad_noise: 3e-4,
            },
            augment: AugmentKind::None,
            space,
            defaults: vec![0.02, 0.9, 1e-6],
            active_sources: vec![
                VarianceSource::DataSplit,
                VarianceSource::WeightsInit,
                VarianceSource::DataOrder,
                VarianceSource::NumericalNoise,
                VarianceSource::HyperOpt,
            ],
        }
    }

    /// The MHC-I binding + shallow-MLP analog (paper Appendix D.5):
    /// nonlinear regression scored by ROC-AUC; Table 6-shaped search space
    /// (hidden size, L2 weight decay).
    pub fn mhc_mlp(scale: Scale) -> CaseStudy {
        let (n_pool, n_train, n_valid, n_test, epochs) = match scale {
            Scale::Test => (400, 250, 60, 60, 4),
            Scale::Quick => (4000, 2500, 500, 500, 12),
            Scale::Full => (12000, 8000, 1500, 1500, 30),
        };
        let mut pool_rng = Rng::seed_from_u64(0x3C2018);
        let pool = binding_regression(
            &BindingConfig {
                n: n_pool,
                dim: 20,
                noise: 0.1,
                shift: 0.0,
            },
            &mut pool_rng,
        );
        let space = SearchSpace::new(vec![
            ("hidden_size".into(), Dim::integer(4, 64)),
            ("weight_decay".into(), Dim::log_uniform(1e-6, 1.0)),
        ]);
        CaseStudy {
            name: "mhc-mlp",
            scale,
            paper_task: "MHC-I peptide binding, shallow MLP",
            metric: MetricKind::Auc,
            pool,
            split_spec: SplitSpec::Plain {
                n_train,
                n_valid,
                n_test,
            },
            arch: MlpConfig {
                hidden: vec![16],
                init: Init::GlorotUniform,
            },
            base_train: TrainConfig {
                epochs,
                batch_size: 32,
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 1e-3,
                lr_gamma: 0.99,
                dropout: 0.0,
                grad_noise: 0.0,
            },
            augment: AugmentKind::None,
            space,
            defaults: vec![16.0, 1e-3],
            active_sources: vec![
                VarianceSource::DataSplit,
                VarianceSource::WeightsInit,
                VarianceSource::DataOrder,
                VarianceSource::HyperOpt,
            ],
        }
    }

    /// All five case studies at the given scale, in the paper's Fig. 1
    /// column order.
    pub fn all(scale: Scale) -> Vec<CaseStudy> {
        vec![
            CaseStudy::glue_rte_bert(scale),
            CaseStudy::glue_sst2_bert(scale),
            CaseStudy::mhc_mlp(scale),
            CaseStudy::pascal_voc_resnet(scale),
            CaseStudy::cifar10_vgg11(scale),
        ]
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Short identifier (e.g. `cifar10-vgg11`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The scale this case study was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The paper task this pipeline stands in for.
    pub fn paper_task(&self) -> &'static str {
        self.paper_task
    }

    /// The reported metric.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The fixed data pool.
    pub fn pool(&self) -> &Dataset {
        &self.pool
    }

    /// The split protocol.
    pub fn split_spec(&self) -> SplitSpec {
        self.split_spec
    }

    /// The hyperparameter search space (paper Tables 2/3/5/6 analog).
    pub fn search_space(&self) -> &SearchSpace {
        &self.space
    }

    /// Default hyperparameters (the paper's "pre-selected reasonable
    /// choices" used for the ξ_O variance study).
    pub fn default_params(&self) -> &[f64] {
        &self.defaults
    }

    /// The variance sources that exist in this pipeline.
    pub fn active_sources(&self) -> &[VarianceSource] {
        &self.active_sources
    }

    /// The base training configuration (before hyperparameters are
    /// applied).
    pub fn base_train(&self) -> &TrainConfig {
        &self.base_train
    }

    // ------------------------------------------------------------------
    // The pipeline operations
    // ------------------------------------------------------------------

    /// Draws the out-of-bootstrap split for a `DataSplit` seed — the
    /// `(S_tv, S_o) ∼ sp(S)` of the paper's Eq. 5.
    pub fn split(&self, split_seed: u64) -> Split {
        let mut rng = Rng::seed_from_u64(split_seed);
        match self.split_spec {
            SplitSpec::Stratified {
                per_class_train,
                per_class_valid,
                per_class_test,
            } => stratified_oob_split(
                self.pool.labels(),
                self.pool.num_classes(),
                per_class_train,
                per_class_valid,
                per_class_test,
                &mut rng,
            ),
            SplitSpec::Plain {
                n_train,
                n_valid,
                n_test,
            } => oob_split(self.pool.len(), n_train, n_valid, n_test, &mut rng),
        }
    }

    /// Interprets a parameter vector from the search space as a concrete
    /// (architecture, training) configuration.
    ///
    /// # Panics
    ///
    /// Panics if the vector arity does not match the space or a dimension
    /// name is unknown.
    pub fn apply_params(&self, params: &[f64]) -> (MlpConfig, TrainConfig) {
        assert_eq!(params.len(), self.space.len(), "parameter arity mismatch");
        let mut arch = self.arch.clone();
        let mut train = self.base_train.clone();
        for ((name, dim), &raw) in self.space.dims().iter().zip(params) {
            let v = dim.clamp(raw);
            match name.as_str() {
                "learning_rate" => train.learning_rate = v,
                "weight_decay" => train.weight_decay = v,
                "momentum" => train.momentum = v,
                "lr_gamma" => train.lr_gamma = v,
                "dropout" => train.dropout = v,
                "init_std" => arch.init = Init::Normal { std: v },
                "hidden_size" => arch.hidden = vec![v as usize],
                other => panic!("unknown hyperparameter dimension {other}"),
            }
        }
        (arch, train)
    }

    /// `Opt(S_t, λ; ξ_O)` (paper Eq. 1): trains one model on the pool
    /// examples `train_idx` with hyperparameters `params` and the ξ_O
    /// seeds from `seeds`.
    pub fn train_model(&self, params: &[f64], train_idx: &[usize], seeds: &SeedAssignment) -> Mlp {
        let (arch, train) = self.apply_params(params);
        let ds = self.pool.subset(train_idx);
        let aug = self.augment.build();
        let mut ts = seeds.train_seeds();
        Mlp::train(&arch, &train, &ds, aug.as_ref(), &mut ts)
    }

    /// Evaluates a model on pool examples (higher is better).
    pub fn evaluate(&self, model: &Mlp, indices: &[usize]) -> f64 {
        self.metric.evaluate(model, &self.pool, indices)
    }

    /// One complete *fixed-hyperparameter* measure: split, train on
    /// train+valid, return the test metric. This is the inner loop of the
    /// paper's Algorithm 2 (`FixHOptEst`) and of the Fig. 1 variance
    /// study.
    pub fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train_model(params, &split.train_valid(), seeds);
        self.evaluate(&model, split.test())
    }

    /// Like [`CaseStudy::run_with_params`] but returns `(valid, test)`
    /// metrics, training only on the train portion — used to diagnose
    /// validation/test correlation (paper Fig. F.2 right columns).
    pub fn run_with_params_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64) {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train_model(params, split.train(), seeds);
        (
            self.evaluate(&model, split.valid()),
            self.evaluate(&model, split.test()),
        )
    }
}

impl crate::workload::Workload for CaseStudy {
    fn name(&self) -> &str {
        CaseStudy::name(self)
    }

    fn scale_label(&self) -> &'static str {
        self.scale.label()
    }

    fn metric_name(&self) -> &'static str {
        self.metric.name()
    }

    fn search_space(&self) -> &SearchSpace {
        CaseStudy::search_space(self)
    }

    fn default_params(&self) -> &[f64] {
        CaseStudy::default_params(self)
    }

    fn active_sources(&self) -> &[VarianceSource] {
        CaseStudy::active_sources(self)
    }

    fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        CaseStudy::run_with_params(self, params, seeds)
    }

    fn run_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64) {
        CaseStudy::run_with_params_valid_test(self, params, seeds)
    }

    fn run_valid(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        // HOpt hot path: skip the test-set forward passes the default
        // implementation would pay for and throw away.
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train_model(params, split.train(), seeds);
        self.evaluate(&model, split.valid())
    }
}

/// The Table 3-shaped search space shared by the two BERT analogs:
/// learning rate (log), weight decay (log), classifier-head init std
/// (log). Ranges adapted to our substrate (documented in EXPERIMENTS.md).
fn bert_like_space() -> SearchSpace {
    SearchSpace::new(vec![
        ("learning_rate".into(), Dim::log_uniform(1e-3, 0.3)),
        ("weight_decay".into(), Dim::log_uniform(1e-6, 2e-3)),
        ("init_std".into(), Dim::log_uniform(0.01, 0.5)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_all_tasks() {
        let all = CaseStudy::all(Scale::Test);
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        assert!(names.contains(&"cifar10-vgg11"));
        assert!(names.contains(&"glue-rte-bert"));
        assert!(names.contains(&"glue-sst2-bert"));
        assert!(names.contains(&"pascalvoc-resnet"));
        assert!(names.contains(&"mhc-mlp"));
        for cs in &all {
            assert_eq!(cs.default_params().len(), cs.search_space().len());
            assert!(!cs.active_sources().is_empty());
        }
    }

    #[test]
    fn pools_are_deterministic() {
        let a = CaseStudy::glue_rte_bert(Scale::Test);
        let b = CaseStudy::glue_rte_bert(Scale::Test);
        assert_eq!(a.pool(), b.pool());
    }

    #[test]
    fn split_respects_spec_sizes() {
        let cs = CaseStudy::cifar10_vgg11(Scale::Test);
        let split = cs.split(42);
        // Stratified: 40 train, 10 valid, 10 test per class × 10 classes.
        assert_eq!(split.train().len(), 400);
        assert_eq!(split.valid().len(), 100);
        assert_eq!(split.test().len(), 100);
        assert_eq!(cs.split_spec().test_size(10), 100);
    }

    #[test]
    fn split_varies_with_seed_only() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        assert_eq!(cs.split(1), cs.split(1));
        assert_ne!(cs.split(1), cs.split(2));
    }

    #[test]
    fn default_run_beats_chance_on_each_task() {
        let seeds = SeedAssignment::all_fixed(7);
        for cs in CaseStudy::all(Scale::Test) {
            let perf = cs.run_with_params(cs.default_params(), &seeds);
            // Chance: 0.1 for 10-class, 0.5 for binary/AUC/IoU-ish.
            let chance = match cs.name() {
                "cifar10-vgg11" => 0.1,
                _ => 0.5,
            };
            assert!(
                perf > chance + 0.05,
                "{} perf {perf} not above chance {chance}",
                cs.name()
            );
            assert!(perf <= 1.0);
        }
    }

    #[test]
    fn fixed_seeds_reproduce_exactly() {
        let cs = CaseStudy::glue_sst2_bert(Scale::Test);
        let seeds = SeedAssignment::all_fixed(3);
        let a = cs.run_with_params(cs.default_params(), &seeds);
        let b = cs.run_with_params(cs.default_params(), &seeds);
        assert_eq!(a, b, "identical seeds must give identical measures");
    }

    #[test]
    fn each_active_source_perturbs_performance() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let base_seeds = SeedAssignment::all_fixed(11);
        let params = cs.default_params().to_vec();
        let base = cs.run_with_params(&params, &base_seeds);
        for &src in cs.active_sources() {
            if src.is_hyperopt() {
                continue; // exercised separately (needs an HPO run)
            }
            // Vary the source over several seeds; at least one must change
            // the measured performance.
            let changed = (0..5).any(|v| {
                let varied = base_seeds.with_varied(src, 1000 + v);
                cs.run_with_params(&params, &varied) != base
            });
            assert!(changed, "source {src} never changed the outcome");
        }
    }

    #[test]
    fn inactive_sources_do_not_perturb() {
        // RTE has no augmentation and no numerical noise: varying those
        // seeds must not change anything.
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let base_seeds = SeedAssignment::all_fixed(13);
        let params = cs.default_params().to_vec();
        let base = cs.run_with_params(&params, &base_seeds);
        for src in [VarianceSource::DataAugment, VarianceSource::NumericalNoise] {
            for v in 0..3 {
                let varied = base_seeds.with_varied(src, 500 + v);
                assert_eq!(
                    cs.run_with_params(&params, &varied),
                    base,
                    "inactive source {src} changed the outcome"
                );
            }
        }
    }

    #[test]
    fn apply_params_maps_every_dimension() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let (arch, train) = cs.apply_params(&[32.0, 0.01]);
        assert_eq!(arch.hidden, vec![32]);
        assert!((train.weight_decay - 0.01).abs() < 1e-12);
        let cs2 = CaseStudy::cifar10_vgg11(Scale::Test);
        let (_, train2) = cs2.apply_params(&[0.1, 1e-3, 0.8, 0.95]);
        assert!((train2.learning_rate - 0.1).abs() < 1e-12);
        assert!((train2.momentum - 0.8).abs() < 1e-12);
        assert!((train2.lr_gamma - 0.95).abs() < 1e-12);
    }

    #[test]
    fn apply_params_clamps_out_of_range() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let (arch, _) = cs.apply_params(&[1000.0, 0.01]);
        assert_eq!(arch.hidden, vec![64], "hidden size clamped to the space");
    }

    #[test]
    fn valid_test_variant_returns_both() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let seeds = SeedAssignment::all_fixed(17);
        let (valid, test) = cs.run_with_params_valid_test(cs.default_params(), &seeds);
        assert!(valid > 0.5 && valid <= 1.0);
        assert!(test > 0.5 && test <= 1.0);
    }

    #[test]
    #[should_panic(expected = "parameter arity mismatch")]
    fn wrong_arity_rejected() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        cs.apply_params(&[1.0]);
    }
}
