//! Variance sources and per-source seed assignments.

use varbench_models::TrainSeeds;
use varbench_rng::SeedTree;

/// A source of uncontrolled variation in a learning pipeline — the ξ of
/// the paper's Section 2.1, split into the training-procedure sources ξ_O
/// and the hyperparameter-optimization source ξ_H.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarianceSource {
    /// Bootstrap sampling of the train/valid/test split (ξ_O; the paper's
    /// "Data (bootstrap)", its largest source).
    DataSplit,
    /// Stochastic data augmentation (ξ_O).
    DataAugment,
    /// Weight initialization (ξ_O; the source most commonly randomized in
    /// the literature).
    WeightsInit,
    /// Data visit order in SGD (ξ_O).
    DataOrder,
    /// Dropout masks (ξ_O).
    Dropout,
    /// Residual numerical noise — GPU nondeterminism in the paper,
    /// synthetic gradient noise here (ξ_O).
    NumericalNoise,
    /// The whole hyperparameter-optimization procedure (ξ_H).
    HyperOpt,
}

impl VarianceSource {
    /// All sources, ξ_O then ξ_H.
    pub const ALL: [VarianceSource; 7] = [
        VarianceSource::DataSplit,
        VarianceSource::DataAugment,
        VarianceSource::WeightsInit,
        VarianceSource::DataOrder,
        VarianceSource::Dropout,
        VarianceSource::NumericalNoise,
        VarianceSource::HyperOpt,
    ];

    /// The training-procedure sources ξ_O.
    pub const XI_O: [VarianceSource; 6] = [
        VarianceSource::DataSplit,
        VarianceSource::DataAugment,
        VarianceSource::WeightsInit,
        VarianceSource::DataOrder,
        VarianceSource::Dropout,
        VarianceSource::NumericalNoise,
    ];

    /// Stable label used for seed derivation and reporting.
    pub fn label(&self) -> &'static str {
        match self {
            VarianceSource::DataSplit => "data_split",
            VarianceSource::DataAugment => "data_augment",
            VarianceSource::WeightsInit => "weights_init",
            VarianceSource::DataOrder => "data_order",
            VarianceSource::Dropout => "dropout",
            VarianceSource::NumericalNoise => "numerical_noise",
            VarianceSource::HyperOpt => "hyperopt",
        }
    }

    /// Human-readable name matching the paper's Fig. 1 rows.
    pub fn display_name(&self) -> &'static str {
        match self {
            VarianceSource::DataSplit => "Data (bootstrap)",
            VarianceSource::DataAugment => "Data augment",
            VarianceSource::WeightsInit => "Weights init",
            VarianceSource::DataOrder => "Data order",
            VarianceSource::Dropout => "Dropout",
            VarianceSource::NumericalNoise => "Numerical noise",
            VarianceSource::HyperOpt => "HyperOpt",
        }
    }

    /// Whether this source belongs to ξ_H (hyperparameter optimization).
    pub fn is_hyperopt(&self) -> bool {
        matches!(self, VarianceSource::HyperOpt)
    }

    fn index(&self) -> usize {
        Self::ALL
            .iter()
            .position(|s| s == self)
            .expect("source in ALL")
    }
}

impl std::fmt::Display for VarianceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// An assignment of one seed to every [`VarianceSource`].
///
/// The experimental designs of the paper are all expressible as operations
/// on seed assignments:
///
/// * *measure one source's variance* — fix a base assignment, then
///   [`SeedAssignment::with_varied`] over that source only (Fig. 1);
/// * *ideal estimator* — randomize everything per sample
///   ([`SeedAssignment::all_random`], Algorithm 1);
/// * *biased estimator* — randomize a ξ_O subset, keep `HyperOpt` fixed
///   (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedAssignment {
    seeds: [u64; 7],
}

impl SeedAssignment {
    /// Derives a fully *fixed* assignment: every source gets a
    /// deterministic seed from `base`.
    pub fn all_fixed(base: u64) -> Self {
        let tree = SeedTree::new(base);
        let mut seeds = [0u64; 7];
        for (i, s) in VarianceSource::ALL.iter().enumerate() {
            seeds[i] = tree.seed(s.label()).0;
        }
        Self { seeds }
    }

    /// Derives the `index`-th fully *random* assignment rooted at `base`:
    /// all sources (ξ_O and ξ_H) vary with `index`.
    pub fn all_random(base: u64, index: u64) -> Self {
        let tree = SeedTree::new(base).subtree_indexed("sample", index);
        let mut seeds = [0u64; 7];
        for (i, s) in VarianceSource::ALL.iter().enumerate() {
            seeds[i] = tree.seed(s.label()).0;
        }
        Self { seeds }
    }

    /// Returns a copy with `source` re-seeded by `variation` (all other
    /// sources unchanged).
    pub fn with_varied(&self, source: VarianceSource, variation: u64) -> Self {
        let mut out = *self;
        out.seeds[source.index()] = SeedTree::new(variation).seed(source.label()).0;
        out
    }

    /// Returns a copy with every source in `sources` re-seeded by
    /// `variation`.
    pub fn with_varied_set(&self, sources: &[VarianceSource], variation: u64) -> Self {
        let mut out = *self;
        for s in sources {
            out = out.with_varied(*s, variation ^ (0x9E37 + s.index() as u64));
        }
        out
    }

    /// The seed assigned to `source`.
    pub fn seed_of(&self, source: VarianceSource) -> u64 {
        self.seeds[source.index()]
    }

    /// Builds the per-stream training seeds consumed by
    /// [`varbench_models::Mlp::train`].
    pub fn train_seeds(&self) -> TrainSeeds {
        use varbench_rng::Rng;
        TrainSeeds {
            init: Rng::seed_from_u64(self.seed_of(VarianceSource::WeightsInit)),
            order: Rng::seed_from_u64(self.seed_of(VarianceSource::DataOrder)),
            dropout: Rng::seed_from_u64(self.seed_of(VarianceSource::Dropout)),
            augment: Rng::seed_from_u64(self.seed_of(VarianceSource::DataAugment)),
            noise: Rng::seed_from_u64(self.seed_of(VarianceSource::NumericalNoise)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_enumerated_once() {
        assert_eq!(VarianceSource::ALL.len(), 7);
        assert_eq!(VarianceSource::XI_O.len(), 6);
        let mut labels: Vec<&str> = VarianceSource::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7, "labels must be unique");
        assert!(VarianceSource::HyperOpt.is_hyperopt());
        assert!(!VarianceSource::DataSplit.is_hyperopt());
    }

    #[test]
    fn fixed_assignment_is_deterministic() {
        assert_eq!(SeedAssignment::all_fixed(1), SeedAssignment::all_fixed(1));
        assert_ne!(SeedAssignment::all_fixed(1), SeedAssignment::all_fixed(2));
    }

    #[test]
    fn with_varied_changes_exactly_one_source() {
        let base = SeedAssignment::all_fixed(1);
        let varied = base.with_varied(VarianceSource::WeightsInit, 77);
        for s in VarianceSource::ALL {
            if s == VarianceSource::WeightsInit {
                assert_ne!(base.seed_of(s), varied.seed_of(s));
            } else {
                assert_eq!(base.seed_of(s), varied.seed_of(s));
            }
        }
    }

    #[test]
    fn varied_seeds_differ_across_variations() {
        let base = SeedAssignment::all_fixed(1);
        let a = base.with_varied(VarianceSource::Dropout, 1);
        let b = base.with_varied(VarianceSource::Dropout, 2);
        assert_ne!(
            a.seed_of(VarianceSource::Dropout),
            b.seed_of(VarianceSource::Dropout)
        );
    }

    #[test]
    fn all_random_varies_everything() {
        let a = SeedAssignment::all_random(1, 0);
        let b = SeedAssignment::all_random(1, 1);
        for s in VarianceSource::ALL {
            assert_ne!(a.seed_of(s), b.seed_of(s), "{s} should vary");
        }
    }

    #[test]
    fn varied_set_changes_selected_sources() {
        let base = SeedAssignment::all_fixed(3);
        let varied = base.with_varied_set(&VarianceSource::XI_O, 9);
        for s in VarianceSource::XI_O {
            assert_ne!(base.seed_of(s), varied.seed_of(s), "{s}");
        }
        assert_eq!(
            base.seed_of(VarianceSource::HyperOpt),
            varied.seed_of(VarianceSource::HyperOpt)
        );
    }

    #[test]
    fn train_seeds_derivation_is_stable() {
        let a = SeedAssignment::all_fixed(5).train_seeds();
        let b = SeedAssignment::all_fixed(5).train_seeds();
        let mut ra = a.init.clone();
        let mut rb = b.init.clone();
        assert_eq!(ra.next_u64(), rb.next_u64());
    }

    #[test]
    fn display_matches_paper_rows() {
        assert_eq!(VarianceSource::DataSplit.to_string(), "Data (bootstrap)");
        assert_eq!(VarianceSource::WeightsInit.to_string(), "Weights init");
    }
}
