//! Content-addressed measurement cache for workload score matrices.
//!
//! The paper's artifacts keep re-measuring the same quantities: Fig. 1,
//! Fig. 2, Fig. G.3 and the interaction study all need per-source score
//! matrices; Fig. 5, Fig. 6 and Fig. H.5 all need ideal- and
//! biased-estimator runs; the Table 8 experiment needs the same tuned
//! hyperparameters as the biased estimator's first repetition. Every one
//! of those measurements is a *pure function of its key* — workload
//! identity (name, version, scale and content fingerprint),
//! randomization set, budget and seed tree — so a run of several
//! artifacts can share them instead of recomputing.
//!
//! [`MeasureCache`] memoizes two entry shapes:
//!
//! * **matrices** ([`MeasureCache::matrix`]) — score matrices whose rows
//!   are derived from per-row seeds independent of the total row count.
//!   Because row `i`'s seeds never depend on `n`, a matrix of `n` rows is
//!   a strict *prefix* of the same key's matrix at any larger `n`: the
//!   cache stores the longest matrix seen and serves prefixes, extending
//!   on demand by computing only the missing tail rows;
//! * **records** ([`MeasureCache::record`]) — fixed-shape results such as
//!   a hyperparameter-optimization outcome (best parameters + fit count).
//!
//! Values are memoized bit-exactly: a cached value is the `f64` bits the
//! compute closure produced, so cached and uncached paths are
//! indistinguishable (`tests/measure_cache.rs` asserts this end to end).
//!
//! The store is in-memory by default; setting [`CACHE_DIR_ENV`]
//! (`VARBENCH_CACHE_DIR`) — or constructing with
//! [`MeasureCache::with_dir`] — adds a write-through on-disk store of
//! versioned, hashed records so measurements survive across processes.
//!
//! # Concurrency model
//!
//! The cache is safe to share between threads *and* between processes
//! pointed at one directory:
//!
//! * **In-process coalescing** — concurrent lookups of the same key
//!   rendezvous on an in-flight table: the first caller computes, the
//!   rest block until it publishes and are then served from the store,
//!   so N identical requests cost one computation (the serving hot
//!   path's headline property). Lookups of *different* keys never wait
//!   on each other.
//! * **Atomic disk publishes** — records are written to a unique
//!   `.tmp.<pid>.<seq>` sibling and `rename`d into place, so a
//!   concurrent reader (another process sharing the directory) observes
//!   either the old complete record or the new complete record, never a
//!   torn prefix. Before publishing, the writer re-reads the record on
//!   disk and keeps whichever holds more rows — a racing process that
//!   extended further wins, and a shorter prefix never replaces a
//!   longer record.
//! * **Collision checks on read** — a record is only served if its
//!   stored key matches the requested canonical key byte-for-byte, so a
//!   filename-hash collision degrades to a miss, never a wrong value.
//!
//! Cross-process publishes of the same key may still both compute (the
//! coalescing table is per-process); the compute contract makes the
//! values identical, so either publish is correct. [`gc_dir`] compacts a
//! shared directory: stale format versions, torn/alien records and
//! orphaned temporaries from crashed writers are dropped.
//!
//! # Compute contract
//!
//! The closure handed to [`MeasureCache::matrix`] must be a pure per-row
//! function: `compute(a..b)` must return exactly the rows `a..b` that
//! `compute(0..n)` would return for any `n >= b`. All measurement
//! functions in `varbench_core::estimator` derive row seeds from
//! `(base_seed, row_index)` only, which guarantees this.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::faultpoint::faultpoint;
use crate::variance::VarianceSource;
use crate::workload::Workload;

/// Environment variable naming the optional on-disk store directory.
pub const CACHE_DIR_ENV: &str = "VARBENCH_CACHE_DIR";

/// On-disk record format version; bumping it invalidates old records
/// (they live under a `v<N>` subdirectory and are simply never read).
/// v2: keys address workloads by `name@version:scale` plus a content
/// fingerprint instead of the bare case-study name.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// What a cache entry measures — the "randomization set" part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Fig. 1-style per-source variance study with default
    /// hyperparameters (one ξ_O source re-seeded per row). The HPO
    /// algorithm and budget are irrelevant to these rows and are
    /// deliberately absent from the key.
    SourceStudy {
        /// The re-seeded source.
        source: VarianceSource,
    },
    /// Joint randomization of a ξ_O source *set* with default
    /// hyperparameters. The set is normalized at key construction.
    JointStudy {
        /// Normalized (active ∩ requested, sorted) source set.
        sources: Vec<VarianceSource>,
    },
    /// Per-sample independent HPO procedures (the ξ_H rows of Fig. 1 and
    /// the ablation budget sweep).
    HyperOptStudy {
        /// HPO algorithm label.
        algo: &'static str,
        /// Trials per procedure.
        budget: usize,
    },
    /// Ideal-estimator samples (Algorithm 1): each row is one full
    /// tune-retrain-measure pipeline; columns are `(test metric, fits)`.
    IdealEstimator {
        /// HPO algorithm label.
        algo: &'static str,
        /// Trials per procedure.
        budget: usize,
    },
    /// Biased-estimator measures (Algorithm 2): `k` re-measures of one
    /// tuned pipeline with a ξ_O subset re-seeded per row.
    FixHOptMeasures {
        /// HPO algorithm label.
        algo: &'static str,
        /// Trials of the single tuning procedure.
        budget: usize,
        /// Which arbitrary fixed ξ this repetition uses.
        repetition: u64,
        /// Label of the randomized ξ_O subset (e.g. `"All"`).
        randomize: &'static str,
    },
    /// One hyperparameter-optimization outcome, addressed by the full
    /// seed assignment it ran under.
    HoptResult {
        /// HPO algorithm label.
        algo: &'static str,
        /// Trials of the procedure.
        budget: usize,
        /// The seven per-source seeds of the fixed assignment.
        seeds: [u64; 7],
    },
}

/// Content address of one cached measurement: the workload identity
/// (`name@version:scale` plus its content fingerprint), the
/// randomization set (the [`MeasureKind`]) and the base seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeasureKey {
    workload: String,
    fingerprint: u64,
    kind: MeasureKind,
    base_seed: u64,
    variant: &'static str,
    canon: String,
}

impl MeasureKey {
    /// Builds the key for a measurement of `workload`.
    ///
    /// The key embeds [`Workload::cache_id`] (name, version and scale)
    /// **and** [`Workload::fingerprint`], so two workloads that merely
    /// share a name can never alias each other's measurements.
    ///
    /// `JointStudy` source sets are normalized to the intersection with
    /// the workload's active sources, sorted: re-seeding an *inactive*
    /// source never changes a measure, so `{active ∪ inactive}` and
    /// `{active}` joint studies produce bit-identical matrices and must
    /// share one entry.
    pub fn new(workload: &dyn Workload, kind: MeasureKind, base_seed: u64) -> MeasureKey {
        MeasureKey::with_variant(workload, kind, base_seed, "")
    }

    /// [`MeasureKey::new`] with an execution-variant tag.
    ///
    /// The empty variant is the default path and produces byte-for-byte
    /// the canonical form [`MeasureKey::new`] always produced, so
    /// existing records (in memory and on disk) keep addressing. A
    /// non-empty variant adds a `|var=<tag>` segment, quarantining
    /// everything measured under a non-default statistical mode (e.g.
    /// the split-stream bootstrap) in its own key space: a variant
    /// record can never alias — or be served in place of — a default
    /// record, even if a future mode changes measured bytes.
    pub fn with_variant(
        workload: &dyn Workload,
        kind: MeasureKind,
        base_seed: u64,
        variant: &'static str,
    ) -> MeasureKey {
        let kind = match kind {
            MeasureKind::JointStudy { sources } => {
                let mut s: Vec<VarianceSource> = sources
                    .into_iter()
                    .filter(|s| workload.active_sources().contains(s))
                    .collect();
                s.sort_unstable();
                s.dedup();
                MeasureKind::JointStudy { sources: s }
            }
            other => other,
        };
        let id = workload.cache_id();
        let fingerprint = workload.fingerprint();
        let canon = canonical(&id, fingerprint, &kind, base_seed, variant);
        MeasureKey {
            workload: id,
            fingerprint,
            kind,
            base_seed,
            variant,
            canon,
        }
    }

    /// The canonical serialized form — the content address used for
    /// in-memory lookup and on-disk record naming.
    pub fn canon(&self) -> &str {
        &self.canon
    }
}

fn canonical(
    workload_id: &str,
    fingerprint: u64,
    kind: &MeasureKind,
    base_seed: u64,
    variant: &str,
) -> String {
    let kind_s = match kind {
        MeasureKind::SourceStudy { source } => format!("source:{}", source.label()),
        MeasureKind::JointStudy { sources } => {
            let labels: Vec<&str> = sources.iter().map(|s| s.label()).collect();
            format!("joint:{}", labels.join("+"))
        }
        MeasureKind::HyperOptStudy { algo, budget } => format!("hopt-study:{algo}:T{budget}"),
        MeasureKind::IdealEstimator { algo, budget } => format!("ideal:{algo}:T{budget}"),
        MeasureKind::FixHOptMeasures {
            algo,
            budget,
            repetition,
            randomize,
        } => format!("fixhopt:{algo}:T{budget}:rep{repetition}:{randomize}"),
        MeasureKind::HoptResult {
            algo,
            budget,
            seeds,
        } => {
            let hex: Vec<String> = seeds.iter().map(|s| format!("{s:016x}")).collect();
            format!("hopt-result:{algo}:T{budget}:{}", hex.join("."))
        }
    };
    let var_s = if variant.is_empty() {
        String::new()
    } else {
        format!("|var={variant}")
    };
    format!(
        "v{CACHE_FORMAT_VERSION}|w={workload_id}|fp={fingerprint:016x}|{kind_s}|seed={base_seed:016x}{var_s}"
    )
}

/// Hit/miss and work accounting, readable via [`MeasureCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Matrix lookups answered entirely from the store.
    pub full_hits: u64,
    /// Matrix lookups that extended an existing shorter entry.
    pub extensions: u64,
    /// Matrix lookups with no usable entry at all.
    pub misses: u64,
    /// Matrix rows computed fresh.
    pub rows_computed: u64,
    /// Matrix rows served from the store.
    pub rows_served: u64,
    /// Record lookups served from the store.
    pub records_served: u64,
    /// Record lookups that had to compute.
    pub records_computed: u64,
    /// Model fits performed inside computed records (HPO trials).
    pub record_fits_computed: u64,
    /// Entries loaded from the on-disk store.
    pub disk_loads: u64,
    /// Lookups that waited for an identical in-flight computation on
    /// another thread instead of computing it again (request
    /// coalescing). Each wait resolves into one of the outcomes above
    /// once the leader publishes.
    pub coalesced: u64,
}

impl CacheStats {
    /// Total matrix lookups.
    pub fn lookups(&self) -> u64 {
        self.full_hits + self.extensions + self.misses
    }

    /// A single scalar for "how much pipeline work actually ran":
    /// matrix rows computed plus model fits inside computed records.
    /// The cache-effectiveness tests compare this across runs.
    pub fn work(&self) -> u64 {
        self.rows_computed + self.record_fits_computed
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Columns per row (1 for plain score matrices, 2 for (metric, fits)).
    cols: usize,
    /// Row-major values, `rows * cols` long.
    values: Vec<f64>,
    /// Prefix-extendable (matrix) vs fixed-shape (record).
    extendable: bool,
}

impl Entry {
    fn rows(&self) -> usize {
        self.values.len() / self.cols
    }
}

#[derive(Default)]
struct CacheState {
    /// Keyed by canonical form. A `BTreeMap` rather than a hash map so
    /// any future iteration (compaction, `cache stats` dumps) is
    /// deterministic by construction — varbench lint L001 enforces this
    /// choice workspace-wide.
    entries: BTreeMap<String, Entry>,
    stats: CacheStats,
}

/// One in-flight computation that concurrent same-key lookups can wait
/// on instead of recomputing.
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Leadership of one key's in-flight computation. Dropping the lease —
/// on success *or* unwind — retires the flight and wakes every waiter,
/// so a panicking compute can never strand them: they re-check the
/// store and one of them takes over.
struct FlightLease<'c> {
    cache: &'c MeasureCache,
    canon: String,
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        let flight = self
            .cache
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&self.canon);
        if let Some(flight) = flight {
            *flight.done.lock().expect("flight lock") = true;
            flight.cv.notify_all();
        }
    }
}

/// Outcome of trying to claim a key's in-flight slot.
enum Claim<'c> {
    /// This caller computes; the lease retires the flight when dropped.
    Lead(FlightLease<'c>),
    /// Another caller is already computing this key; wait on its flight.
    Join(Arc<Flight>),
}

/// A thread-safe, content-addressed store of workload measurements.
///
/// Cheap to create; share one per experiment run (the registry hands the
/// same cache to every artifact). All methods take `&self`.
#[derive(Default)]
pub struct MeasureCache {
    state: Mutex<CacheState>,
    /// In-flight computations by canonical key (request coalescing).
    inflight: Mutex<BTreeMap<String, Arc<Flight>>>,
    dir: Option<PathBuf>,
    off: bool,
}

impl MeasureCache {
    /// A fresh in-memory cache.
    pub fn new() -> MeasureCache {
        MeasureCache::default()
    }

    /// A no-op cache: every lookup misses and nothing is ever stored —
    /// the behaviour of the pre-cache serial measurement path, used by
    /// the default serial `RunContext`. (The CLI's `--no-cache` flag
    /// instead gives each artifact a private in-memory cache, preserving
    /// intra-artifact memoization.) Work accounting still counts what
    /// was computed.
    pub fn disabled() -> MeasureCache {
        MeasureCache {
            off: true,
            ..MeasureCache::default()
        }
    }

    /// A cache backed by a write-through on-disk store under `dir`
    /// (created on first write).
    pub fn with_dir(dir: impl Into<PathBuf>) -> MeasureCache {
        MeasureCache {
            dir: Some(dir.into()),
            ..MeasureCache::default()
        }
    }

    /// Reads [`CACHE_DIR_ENV`]: set and non-empty means disk-backed,
    /// otherwise in-memory only.
    pub fn from_env() -> MeasureCache {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => MeasureCache::with_dir(dir),
            _ => MeasureCache::new(),
        }
    }

    /// Whether this cache persists to disk.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// Whether this is a no-op ([`MeasureCache::disabled`]) cache.
    pub fn is_disabled(&self) -> bool {
        self.off
    }

    /// The on-disk store directory, if persistent.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock").stats
    }

    /// Number of distinct entries currently held in memory.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }

    /// Whether the in-memory store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tries to claim the in-flight slot for `canon`; joins the existing
    /// flight instead when another thread already computes this key.
    fn claim(&self, canon: &str) -> Claim<'_> {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        match inflight.get(canon) {
            Some(flight) => Claim::Join(Arc::clone(flight)),
            None => {
                inflight.insert(canon.to_string(), Arc::new(Flight::default()));
                Claim::Lead(FlightLease {
                    cache: self,
                    canon: canon.to_string(),
                })
            }
        }
    }

    /// Blocks until `flight` retires, then bumps the coalescing counter.
    fn wait_for(&self, flight: &Flight) {
        let mut done = flight.done.lock().expect("flight lock");
        while !*done {
            done = flight.cv.wait(done).expect("flight lock");
        }
        drop(done);
        self.state.lock().expect("cache lock").stats.coalesced += 1;
    }

    /// Returns the first `rows` rows of the matrix at `key`, computing
    /// only the rows the store does not already hold.
    ///
    /// `compute(a..b)` must return the rows `a..b` (row-major,
    /// `(b - a) * cols` values) and obey the module-level compute
    /// contract. Concurrent calls for the same key coalesce: one caller
    /// computes while the rest wait and are then served from the store
    /// (so `compute` must never recursively request its own key — that
    /// would wait on itself). Callers wanting *more* rows than a
    /// concurrent leader computes wait, then extend.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`, if a cached entry exists
    /// with a different `cols`, or if `compute` returns the wrong number
    /// of values.
    pub fn matrix(
        &self,
        key: &MeasureKey,
        rows: usize,
        cols: usize,
        compute: impl FnOnce(Range<usize>) -> Vec<f64>,
    ) -> Vec<f64> {
        assert!(rows > 0 && cols > 0, "matrix needs rows > 0 and cols > 0");
        if self.off {
            let values = compute(0..rows);
            assert_eq!(
                values.len(),
                rows * cols,
                "compute returned the wrong number of values for {}",
                key.canon()
            );
            let mut st = self.state.lock().expect("cache lock");
            st.stats.misses += 1;
            st.stats.rows_computed += rows as u64;
            return values;
        }
        // Lookup copies only what this request needs: the requested
        // prefix on a full hit, the whole (shorter) matrix as the
        // extension base otherwise.
        let bounded = |e: &Entry| {
            assert_eq!(e.cols, cols, "column-shape mismatch for {}", key.canon());
            assert!(
                e.extendable,
                "matrix/record kind mismatch for {}",
                key.canon()
            );
            e.values[..e.values.len().min(rows * cols)].to_vec()
        };
        let lookup = |cache: &MeasureCache| -> Option<Vec<f64>> {
            {
                let st = cache.state.lock().expect("cache lock");
                st.entries.get(key.canon()).map(bounded)
            }
            .or_else(|| cache.promote_from_disk(key).map(|e| bounded(&e)))
        };
        // Coalescing loop: only the flight leader computes; everyone
        // else waits for the leader's publish and re-checks the store.
        let (_lease, cached) = loop {
            let cached = lookup(self);
            if let Some(prefix) = &cached {
                if prefix.len() == rows * cols {
                    let mut st = self.state.lock().expect("cache lock");
                    st.stats.full_hits += 1;
                    st.stats.rows_served += rows as u64;
                    return cached.expect("checked above");
                }
            }
            match self.claim(key.canon()) {
                // Re-check under leadership: the previous leader may
                // have published between our lookup and our claim.
                Claim::Lead(lease) => break (lease, lookup(self)),
                Claim::Join(flight) => self.wait_for(&flight),
            }
        };
        let have: Vec<f64> = {
            let mut st = self.state.lock().expect("cache lock");
            match cached {
                Some(prefix) if prefix.len() == rows * cols => {
                    st.stats.full_hits += 1;
                    st.stats.rows_served += rows as u64;
                    return prefix;
                }
                Some(prefix) => {
                    st.stats.extensions += 1;
                    prefix
                }
                None => {
                    st.stats.misses += 1;
                    Vec::new()
                }
            }
        };
        let have_rows = have.len() / cols;
        // Compute the missing tail outside the lock so different keys
        // (and artifacts) can measure concurrently.
        let tail = compute(have_rows..rows);
        assert_eq!(
            tail.len(),
            (rows - have_rows) * cols,
            "compute returned the wrong number of values for {}",
            key.canon()
        );
        let mut full = have;
        full.extend_from_slice(&tail);
        let to_persist = {
            let mut st = self.state.lock().expect("cache lock");
            st.stats.rows_computed += (rows - have_rows) as u64;
            st.stats.rows_served += have_rows as u64;
            let keep = match st.entries.get(key.canon()) {
                // Another thread extended further while we computed; keep
                // the longer entry (identical values by the compute
                // contract).
                Some(e) if e.rows() >= rows => false,
                _ => true,
            };
            if keep {
                let entry = Entry {
                    cols,
                    values: full.clone(),
                    extendable: true,
                };
                st.entries.insert(key.canon().to_string(), entry.clone());
                Some(entry)
            } else {
                None
            }
        };
        // Disk write-through happens outside the lock: other artifacts'
        // lookups must not serialize behind IO.
        if let Some(entry) = to_persist {
            self.persist(&entry, key);
        }
        full
    }

    /// Returns the fixed-shape record at `key`, computing it on a miss.
    ///
    /// The record is a value vector plus a fit count (the model fits the
    /// computation consumed — counted into the stats so cache
    /// effectiveness can be measured in units of pipeline work).
    pub fn record(
        &self,
        key: &MeasureKey,
        compute: impl FnOnce() -> (Vec<f64>, usize),
    ) -> (Vec<f64>, usize) {
        if self.off {
            let (values, fits) = compute();
            let mut st = self.state.lock().expect("cache lock");
            st.stats.records_computed += 1;
            st.stats.record_fits_computed += fits as u64;
            return (values, fits);
        }
        let unpack = |e: &Entry| {
            assert!(
                !e.extendable,
                "matrix/record kind mismatch for {}",
                key.canon()
            );
            (e.values[1..].to_vec(), e.values[0] as usize)
        };
        let lookup = |cache: &MeasureCache| -> Option<(Vec<f64>, usize)> {
            {
                let st = cache.state.lock().expect("cache lock");
                st.entries.get(key.canon()).map(unpack)
            }
            .or_else(|| cache.promote_from_disk(key).map(|e| unpack(&e)))
        };
        let _lease = loop {
            if let Some(hit) = lookup(self) {
                let mut st = self.state.lock().expect("cache lock");
                st.stats.records_served += 1;
                return hit;
            }
            match self.claim(key.canon()) {
                Claim::Lead(lease) => {
                    // Re-check under leadership (a previous leader may
                    // have published between our lookup and our claim).
                    if let Some(hit) = lookup(self) {
                        let mut st = self.state.lock().expect("cache lock");
                        st.stats.records_served += 1;
                        return hit;
                    }
                    break lease;
                }
                Claim::Join(flight) => self.wait_for(&flight),
            }
        };
        let (values, fits) = compute();
        let mut stored = Vec::with_capacity(values.len() + 1);
        stored.push(fits as f64);
        stored.extend_from_slice(&values);
        let to_persist = {
            let mut st = self.state.lock().expect("cache lock");
            if !st.entries.contains_key(key.canon()) {
                st.stats.records_computed += 1;
                st.stats.record_fits_computed += fits as u64;
                let entry = Entry {
                    cols: 1,
                    values: stored,
                    extendable: false,
                };
                st.entries.insert(key.canon().to_string(), entry.clone());
                Some(entry)
            } else {
                // Lost a race: the stored entry is identical by
                // determinism, but this thread really did the work — the
                // accounting must say so (matrix() counts discarded race
                // computations the same way).
                st.stats.records_computed += 1;
                st.stats.record_fits_computed += fits as u64;
                None
            }
        };
        if let Some(entry) = to_persist {
            self.persist(&entry, key);
        }
        (values, fits)
    }

    // ------------------------------------------------------------------
    // On-disk store
    // ------------------------------------------------------------------

    fn record_path(&self, key: &MeasureKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| {
            d.join(format!("v{CACHE_FORMAT_VERSION}"))
                .join(format!("{:016x}.rec", fnv1a64(key.canon().as_bytes())))
        })
    }

    /// Best-effort disk read on an in-memory miss; the file IO and
    /// parsing run with the lock **released** so concurrent lookups of
    /// other keys never queue behind disk reads. IO failures and
    /// malformed or mismatched (hash-collided) records are treated as
    /// misses — the cache is an accelerator, never a source of truth.
    ///
    /// Returns the entry now in memory for this key (loaded from disk,
    /// or inserted by a racing thread in the meantime).
    fn promote_from_disk(&self, key: &MeasureKey) -> Option<Entry> {
        let path = self.record_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        let entry = parse_record(&text, key.canon())?;
        let mut st = self.state.lock().expect("cache lock");
        if let Some(existing) = st.entries.get(key.canon()) {
            // A racing thread populated the key while we read the file;
            // its entry may be longer (a fresh extension) — prefer it.
            return Some(existing.clone());
        }
        st.stats.disk_loads += 1;
        st.entries.insert(key.canon().to_string(), entry.clone());
        Some(entry)
    }

    /// Best-effort write-through; IO errors are ignored. Called with the
    /// cache lock released — serialization and IO must not block other
    /// threads' lookups.
    ///
    /// The publish is **atomic**: the record is rendered into a unique
    /// `.tmp.<pid>.<seq>` sibling and `rename`d into place, so a
    /// concurrent reader — in this process or another one sharing the
    /// directory — sees either the previous complete record or the new
    /// complete record, never a torn write. Before publishing, the
    /// current on-disk record is re-read: if a racing process already
    /// holds at least as many rows (or the identical fixed-shape
    /// record), this publish is skipped — a shorter prefix must never
    /// replace a longer record.
    fn persist(&self, entry: &Entry, key: &MeasureKey) {
        let Some(path) = self.record_path(key) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if std::fs::create_dir_all(parent).is_err() {
                return;
            }
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(existing) = parse_record(&text, key.canon()) {
                if !existing.extendable || existing.rows() >= entry.rows() {
                    return; // already current (or longer) on disk
                }
            }
        }
        // Unique per (process, publish) so two writers of the same key
        // can never interleave bytes in one temp file.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_file_name(format!(
            "{}.tmp.{}.{seq}",
            path.file_name().unwrap_or_default().to_string_lossy(),
            std::process::id()
        ));
        if std::fs::write(&tmp, render_record(entry, key.canon())).is_ok() {
            // The fault window every crash-safety test cares about: a
            // writer dying here leaves a temp file but no (or the old)
            // record — gc reaps the orphan, readers never see a tear.
            faultpoint("publish:after-tmp");
            if std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
            faultpoint("publish:after-rename");
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Rows already available for `key` — the longest prefix held in
    /// memory or on disk — without computing anything. `0` means no
    /// usable record. The fleet dispatch driver polls this to observe
    /// workers' publishes; a successful disk probe promotes the record
    /// into memory (counted as a disk load), so the eventual real
    /// lookup is a full hit.
    pub fn probe_rows(&self, key: &MeasureKey) -> usize {
        if self.off {
            return 0;
        }
        {
            let st = self.state.lock().expect("cache lock");
            if let Some(e) = st.entries.get(key.canon()) {
                return e.rows();
            }
        }
        self.promote_from_disk(key).map_or(0, |e| e.rows())
    }
}

/// Serializes an entry: header lines then one hex-encoded `f64` per line
/// (bit-exact round trip; no decimal formatting is involved).
fn render_record(entry: &Entry, canon: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("varbench-cache {CACHE_FORMAT_VERSION}\n"));
    out.push_str(&format!("key {canon}\n"));
    out.push_str(&format!(
        "entry rows={} cols={} extendable={}\n",
        entry.rows(),
        entry.cols,
        u8::from(entry.extendable)
    ));
    for v in &entry.values {
        out.push_str(&format!("{:016x}\n", v.to_bits()));
    }
    out
}

fn parse_record(text: &str, canon: &str) -> Option<Entry> {
    let (key, entry) = parse_record_any(text)?;
    if key != canon {
        return None; // hash collision or stale record
    }
    Some(entry)
}

/// Parses any well-formed current-version record, returning its stored
/// canonical key alongside the entry — the key check against an expected
/// canon is the caller's job ([`parse_record`] for lookups, [`gc_dir`]
/// for the filename-consistency check).
fn parse_record_any(text: &str) -> Option<(&str, Entry)> {
    let mut lines = text.lines();
    if lines.next()? != format!("varbench-cache {CACHE_FORMAT_VERSION}") {
        return None;
    }
    let key = lines.next()?.strip_prefix("key ")?;
    let shape = lines.next()?.strip_prefix("entry ")?;
    let mut rows = None;
    let mut cols = None;
    let mut extendable = None;
    for part in shape.split_whitespace() {
        let (k, v) = part.split_once('=')?;
        match k {
            "rows" => rows = v.parse::<usize>().ok(),
            "cols" => cols = v.parse::<usize>().ok(),
            "extendable" => extendable = v.parse::<u8>().ok(),
            _ => return None,
        }
    }
    let (rows, cols, extendable) = (rows?, cols?, extendable? != 0);
    let values: Vec<f64> = lines
        .map(|l| u64::from_str_radix(l.trim(), 16).ok().map(f64::from_bits))
        .collect::<Option<Vec<f64>>>()?;
    // No legitimate entry is empty: matrices persist only after >= 1 row,
    // records always carry a leading fit count. An `entries rows=0` file
    // (truncated or hand-edited) must be a miss, not a later panic.
    if rows == 0 || cols == 0 || values.len() != rows * cols {
        return None;
    }
    Some((
        key,
        Entry {
            cols,
            values,
            extendable,
        },
    ))
}

/// Summary of one [`gc_dir`] compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Valid current-format records left in place.
    pub kept_records: u64,
    /// Bytes held by the kept records.
    pub kept_bytes: u64,
    /// Files removed from stale (non-current) format version
    /// directories — superseded wholesale by the format bump.
    pub stale_version_files: u64,
    /// Unparseable, truncated, or misfiled current-format records
    /// removed (a record whose stored key does not hash to its filename
    /// is a duplicate or an alien file and can never be served).
    pub torn_files: u64,
    /// Orphaned `.tmp.<pid>.<seq>` temporaries removed (left behind by
    /// crashed or interrupted writers; a live writer whose temp file is
    /// swept simply fails its best-effort publish and recomputes later).
    /// Includes orphan temporaries from the lease and queue namespaces.
    pub tmp_files: u64,
    /// Stale worker-lease files removed (see [`crate::lease::gc`]): torn
    /// leases, and leases whose job is no longer queued. A crashed
    /// worker's lease on still-pending work is kept — reclaiming live
    /// work is the dispatch driver's call, not gc's.
    pub stale_leases: u64,
    /// Total bytes reclaimed by the pass.
    pub bytes_reclaimed: u64,
}

impl GcReport {
    /// Files removed, over all categories.
    pub fn files_removed(&self) -> u64 {
        self.stale_version_files + self.torn_files + self.tmp_files + self.stale_leases
    }
}

/// Compacts an on-disk cache directory shared between processes.
///
/// Drops, and accounts for in the returned [`GcReport`]:
///
/// * whole **stale format-version subdirectories** (`v<N>` with
///   `N != `[`CACHE_FORMAT_VERSION`]) — their records are superseded by
///   the format bump and are never read again;
/// * **torn or alien records** in the current version directory:
///   unparseable files, truncated files, and records whose stored key
///   does not hash to their filename (shorter-prefix records are
///   superseded *in place* by the atomic rename publish, so a readable
///   record that fails the filename check is a stray copy);
/// * **orphaned temporaries** (`*.tmp.<pid>.<seq>`) left by crashed
///   writers;
/// * **stale worker leases and torn queue files** in the fleet's
///   `leases/` and `queue/` namespaces (see [`crate::lease::gc`]).
///
/// Only cache-owned paths are touched: the `v<N>` subdirectories and
/// the `.rec`/temp files inside the current one. Anything else under
/// `dir` — the user may point `VARBENCH_CACHE_DIR` at a directory with
/// unrelated contents — is left alone. A missing `dir` is an empty
/// report, not an error.
pub fn gc_dir(dir: &Path) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let current = format!("v{CACHE_FORMAT_VERSION}");
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_version = name
            .strip_prefix('v')
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
        let path = entry.path();
        if !is_version || !path.is_dir() {
            continue;
        }
        if name == current {
            gc_version_dir(&path, &mut report);
            let leases = crate::lease::gc(dir);
            report.stale_leases += leases.stale_leases;
            report.torn_files += leases.torn_jobs;
            report.tmp_files += leases.tmp_files;
            report.bytes_reclaimed += leases.bytes_reclaimed;
        } else {
            let (files, bytes) = dir_usage(&path);
            std::fs::remove_dir_all(&path)?;
            report.stale_version_files += files;
            report.bytes_reclaimed += bytes;
        }
    }
    Ok(report)
}

/// Sweeps the current-format record directory (best-effort per file).
fn gc_version_dir(vdir: &Path, report: &mut GcReport) {
    let Ok(entries) = std::fs::read_dir(vdir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        let bytes = entry.metadata().map_or(0, |m| m.len());
        if name.contains(".tmp.") {
            if std::fs::remove_file(&path).is_ok() {
                report.tmp_files += 1;
                report.bytes_reclaimed += bytes;
            }
            continue;
        }
        let Some(stem) = name.strip_suffix(".rec") else {
            continue; // not a cache file; leave it alone
        };
        let valid = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| {
                parse_record_any(&text).map(|(key, _)| format!("{:016x}", fnv1a64(key.as_bytes())))
            })
            .is_some_and(|expected| expected == stem);
        if valid {
            report.kept_records += 1;
            report.kept_bytes += bytes;
        } else if std::fs::remove_file(&path).is_ok() {
            report.torn_files += 1;
            report.bytes_reclaimed += bytes;
        }
    }
}

/// `(file count, byte total)` of the files directly under `dir`.
fn dir_usage(dir: &Path) -> (u64, u64) {
    let (mut files, mut bytes) = (0u64, 0u64);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    files += 1;
                    bytes += meta.len();
                }
            }
        }
    }
    (files, bytes)
}

/// FNV-1a 64-bit hash — the content-address hash for on-disk records and
/// the default [`Workload::fingerprint`].
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{CaseStudy, Scale};

    fn test_cs() -> CaseStudy {
        CaseStudy::glue_rte_bert(Scale::Test)
    }

    fn key(seed: u64) -> MeasureKey {
        MeasureKey::new(
            &test_cs(),
            MeasureKind::SourceStudy {
                source: VarianceSource::DataSplit,
            },
            seed,
        )
    }

    /// A deterministic per-row compute obeying the prefix contract.
    fn rowfn(range: Range<usize>) -> Vec<f64> {
        range.map(|i| (i as f64) * 1.5 + 0.25).collect()
    }

    #[test]
    fn miss_then_hit_then_extension() {
        let cache = MeasureCache::new();
        let k = key(1);
        let a = cache.matrix(&k, 4, 1, rowfn);
        assert_eq!(a, rowfn(0..4));
        let s = cache.stats();
        assert_eq!((s.misses, s.full_hits, s.extensions), (1, 0, 0));
        assert_eq!((s.rows_computed, s.rows_served), (4, 0));

        // Same length and a shorter prefix are both full hits.
        assert_eq!(cache.matrix(&k, 4, 1, |_| unreachable!()), rowfn(0..4));
        assert_eq!(cache.matrix(&k, 2, 1, |_| unreachable!()), rowfn(0..2));
        let s = cache.stats();
        assert_eq!((s.misses, s.full_hits, s.extensions), (1, 2, 0));
        assert_eq!((s.rows_computed, s.rows_served), (4, 6));

        // A longer request computes only the tail.
        let b = cache.matrix(&k, 7, 1, |r| {
            assert_eq!(r, 4..7, "only the tail is computed");
            rowfn(r)
        });
        assert_eq!(b, rowfn(0..7));
        let s = cache.stats();
        assert_eq!((s.misses, s.full_hits, s.extensions), (1, 2, 1));
        assert_eq!((s.rows_computed, s.rows_served), (7, 10));
        assert_eq!(s.lookups(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_seed_is_a_different_entry() {
        let cache = MeasureCache::new();
        cache.matrix(&key(1), 3, 1, rowfn);
        cache.matrix(&key(2), 3, 1, rowfn);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn key_distinguishes_case_scale_kind_seed() {
        let cs_a = CaseStudy::glue_rte_bert(Scale::Test);
        let cs_b = CaseStudy::glue_rte_bert(Scale::Quick);
        let cs_c = CaseStudy::mhc_mlp(Scale::Test);
        let mk = |cs: &CaseStudy, kind, seed| MeasureKey::new(cs, kind, seed);
        let src = || MeasureKind::SourceStudy {
            source: VarianceSource::DataSplit,
        };
        let base = mk(&cs_a, src(), 7);
        assert_ne!(base.canon(), mk(&cs_b, src(), 7).canon(), "scale");
        assert_ne!(base.canon(), mk(&cs_c, src(), 7).canon(), "case study");
        assert_ne!(base.canon(), mk(&cs_a, src(), 8).canon(), "seed");
        assert_ne!(
            base.canon(),
            mk(
                &cs_a,
                MeasureKind::SourceStudy {
                    source: VarianceSource::WeightsInit
                },
                7
            )
            .canon(),
            "source"
        );
        let budget = |b| MeasureKind::IdealEstimator {
            algo: "Random Search",
            budget: b,
        };
        assert_ne!(
            mk(&cs_a, budget(3), 7).canon(),
            mk(&cs_a, budget(4), 7).canon(),
            "budget"
        );
    }

    /// A minimal fake workload for key-collision tests.
    struct Fake {
        version: u32,
        defaults: Vec<f64>,
        space: varbench_hpo::SearchSpace,
    }

    impl Fake {
        fn new(version: u32, default: f64) -> Fake {
            Fake {
                version,
                defaults: vec![default],
                space: varbench_hpo::SearchSpace::new(vec![(
                    "x".into(),
                    varbench_hpo::Dim::uniform(0.0, 1.0),
                )]),
            }
        }
    }

    impl Workload for Fake {
        fn name(&self) -> &str {
            "collider" // deliberately shared across instances
        }
        fn version(&self) -> u32 {
            self.version
        }
        fn metric_name(&self) -> &'static str {
            "accuracy"
        }
        fn search_space(&self) -> &varbench_hpo::SearchSpace {
            &self.space
        }
        fn default_params(&self) -> &[f64] {
            &self.defaults
        }
        fn active_sources(&self) -> &[VarianceSource] {
            &[VarianceSource::DataSplit]
        }
        fn run_with_params(&self, _params: &[f64], _seeds: &crate::SeedAssignment) -> f64 {
            0.5
        }
        fn run_valid_test(&self, _params: &[f64], _seeds: &crate::SeedAssignment) -> (f64, f64) {
            (0.5, 0.5)
        }
    }

    #[test]
    fn workloads_sharing_a_name_never_alias_cache_entries() {
        // Two distinct workloads named "collider": same name, different
        // version or different configuration. Their keys — and therefore
        // their cached matrices — must stay separate.
        let v1 = Fake::new(1, 0.5);
        let v2 = Fake::new(2, 0.5); // same config, bumped version
        let other = Fake::new(1, 0.75); // same version, different defaults
        let kind = || MeasureKind::SourceStudy {
            source: VarianceSource::DataSplit,
        };
        let k1 = MeasureKey::new(&v1, kind(), 7);
        let k2 = MeasureKey::new(&v2, kind(), 7);
        let k3 = MeasureKey::new(&other, kind(), 7);
        assert_ne!(k1.canon(), k2.canon(), "version must separate keys");
        assert_ne!(k1.canon(), k3.canon(), "fingerprint must separate keys");

        // End to end: the second workload must not be served the first
        // workload's rows.
        let cache = MeasureCache::new();
        let a = cache.matrix(&k1, 3, 1, |r| r.map(|i| i as f64).collect());
        let b = cache.matrix(&k3, 3, 1, |r| r.map(|i| i as f64 + 100.0).collect());
        assert_ne!(a, b, "same-name workloads must compute independently");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn variant_keys_never_alias_the_default_path() {
        let cs = test_cs();
        let kind = || MeasureKind::SourceStudy {
            source: VarianceSource::DataSplit,
        };
        let plain = MeasureKey::new(&cs, kind(), 7);
        let empty_variant = MeasureKey::with_variant(&cs, kind(), 7, "");
        let split = MeasureKey::with_variant(&cs, kind(), 7, "boot-split");
        // The empty variant IS the default path — canonical form (and
        // therefore on-disk record addresses) byte-identical.
        assert_eq!(plain.canon(), empty_variant.canon());
        assert!(!plain.canon().contains("|var="));
        // A non-empty variant is quarantined in its own key space.
        assert_ne!(plain.canon(), split.canon());
        assert!(split.canon().ends_with("|var=boot-split"));

        // End to end: the variant entry computes independently and the
        // default entry is never served for it (or vice versa).
        let cache = MeasureCache::new();
        let a = cache.matrix(&plain, 3, 1, |r| r.map(|i| i as f64).collect());
        let b = cache.matrix(&split, 3, 1, |r| r.map(|i| i as f64 + 500.0).collect());
        assert_ne!(a, b);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disabled_cache_always_computes_and_stores_nothing() {
        let cache = MeasureCache::disabled();
        assert!(cache.is_disabled());
        let k = key(1);
        let a = cache.matrix(&k, 3, 1, rowfn);
        let b = cache.matrix(&k, 3, 1, rowfn);
        assert_eq!(a, b, "values still deterministic");
        assert!(cache.is_empty(), "nothing stored");
        let s = cache.stats();
        assert_eq!((s.misses, s.rows_computed, s.rows_served), (2, 6, 0));
        let (v, fits) = cache.record(&k, || (vec![1.0], 2));
        let (v2, _) = cache.record(&k, || (vec![1.0], 2));
        assert_eq!(v, v2);
        assert_eq!(fits, 2);
        assert_eq!(cache.stats().records_computed, 2, "recomputed every time");
    }

    #[test]
    fn joint_key_normalizes_to_active_sources() {
        // RTE has no augmentation / numerical noise: a joint study over
        // all of ξ_O addresses the same entry as one over the active
        // subset (the measures are bit-identical either way).
        let cs = test_cs();
        let all = MeasureKey::new(
            &cs,
            MeasureKind::JointStudy {
                sources: VarianceSource::XI_O.to_vec(),
            },
            5,
        );
        let active: Vec<VarianceSource> = cs
            .active_sources()
            .iter()
            .copied()
            .filter(|s| !s.is_hyperopt())
            .collect();
        let act = MeasureKey::new(&cs, MeasureKind::JointStudy { sources: active }, 5);
        assert_eq!(all.canon(), act.canon());
    }

    #[test]
    fn records_round_trip_with_fit_accounting() {
        let cache = MeasureCache::new();
        let k = MeasureKey::new(
            &test_cs(),
            MeasureKind::HoptResult {
                algo: "Random Search",
                budget: 5,
                seeds: [1, 2, 3, 4, 5, 6, 7],
            },
            0,
        );
        let (v, fits) = cache.record(&k, || (vec![0.1, 0.2, 0.3], 5));
        assert_eq!(v, vec![0.1, 0.2, 0.3]);
        assert_eq!(fits, 5);
        let (v2, fits2) = cache.record(&k, || unreachable!());
        assert_eq!((v2, fits2), (v, fits));
        let s = cache.stats();
        assert_eq!((s.records_computed, s.records_served), (1, 1));
        assert_eq!(s.record_fits_computed, 5);
        assert_eq!(s.work(), 5);
    }

    #[test]
    fn disk_store_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!(
            "varbench-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Awkward values: negative zero, subnormal, extreme exponents.
        let vals = [-0.0, f64::MIN_POSITIVE / 2.0, 1e308, -1e-308, 0.1 + 0.2];
        let weird =
            move |r: Range<usize>| -> Vec<f64> { r.map(|i| vals[i % vals.len()]).collect() };
        let a = {
            let cache = MeasureCache::with_dir(&dir);
            cache.matrix(&key(9), 5, 1, weird)
        };
        let b = {
            let fresh = MeasureCache::with_dir(&dir);
            let b = fresh.matrix(&key(9), 5, 1, |_| unreachable!("must load from disk"));
            assert_eq!(fresh.stats().disk_loads, 1);
            assert_eq!(fresh.stats().full_hits, 1);
            b
        };
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "disk round trip must be bit-exact");
        // Records persist too.
        let rk = MeasureKey::new(
            &test_cs(),
            MeasureKind::HoptResult {
                algo: "Random Search",
                budget: 2,
                seeds: [0; 7],
            },
            0,
        );
        {
            let cache = MeasureCache::with_dir(&dir);
            cache.record(&rk, || (vec![1.25], 2));
        }
        {
            let fresh = MeasureCache::with_dir(&dir);
            let (v, fits) = fresh.record(&rk, || unreachable!("must load from disk"));
            assert_eq!((v, fits), (vec![1.25], 2));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_disk_records_are_ignored() {
        let dir = std::env::temp_dir().join(format!(
            "varbench-cache-bad-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MeasureCache::with_dir(&dir);
        let k = key(11);
        // Plant garbage where the record would live.
        let path = cache.record_path(&k).expect("persistent cache");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not a cache record").unwrap();
        let v = cache.matrix(&k, 3, 1, rowfn);
        assert_eq!(v, rowfn(0..3));
        assert_eq!(cache.stats().disk_loads, 0);

        // An empty-but-well-formed record (e.g. a truncation artifact)
        // must also read as a miss, never panic on values[0].
        let rk = MeasureKey::new(
            &test_cs(),
            MeasureKind::HoptResult {
                algo: "Random Search",
                budget: 1,
                seeds: [9; 7],
            },
            0,
        );
        let rpath = cache.record_path(&rk).expect("persistent cache");
        std::fs::write(
            &rpath,
            format!(
                "varbench-cache {CACHE_FORMAT_VERSION}\nkey {}\nentry rows=0 cols=1 extendable=0\n",
                rk.canon()
            ),
        )
        .unwrap();
        let (v, fits) = cache.record(&rk, || (vec![0.5], 1));
        assert_eq!((v, fits), (vec![0.5], 1), "rows=0 file treated as miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "column-shape mismatch")]
    fn column_shape_is_checked() {
        let cache = MeasureCache::new();
        let k = key(1);
        cache.matrix(&k, 2, 1, rowfn);
        cache.matrix(&k, 2, 2, |r| r.flat_map(|i| [i as f64, 0.0]).collect());
    }

    #[test]
    fn concurrent_same_key_lookups_coalesce_to_one_compute() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;

        let cache = MeasureCache::new();
        let k = key(77);
        let calls = AtomicUsize::new(0);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let (cache, k, calls) = (&cache, &k, &calls);
        std::thread::scope(|scope| {
            let leader = scope.spawn(move || {
                cache.matrix(k, 4, 1, |r| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    started_tx.send(()).expect("main alive");
                    go_rx.recv().expect("release signal");
                    rowfn(r)
                })
            });
            started_rx.recv().expect("leader started");
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(move || {
                        cache.matrix(k, 4, 1, |r| {
                            calls.fetch_add(1, Ordering::SeqCst);
                            rowfn(r)
                        })
                    })
                })
                .collect();
            // Deterministic rendezvous: release the leader only once all
            // three waiters hold the flight (leader's map slot = 1 ref,
            // plus one clone per waiting thread).
            loop {
                let joined = {
                    let inflight = cache.inflight.lock().expect("inflight lock");
                    inflight
                        .get(k.canon())
                        .map(Arc::strong_count)
                        .unwrap_or(usize::MAX)
                };
                if joined >= 4 {
                    break;
                }
                std::thread::yield_now();
            }
            go_tx.send(()).expect("leader alive");
            assert_eq!(leader.join().expect("leader"), rowfn(0..4));
            for w in waiters {
                assert_eq!(w.join().expect("waiter"), rowfn(0..4));
            }
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "identical concurrent requests must compute exactly once"
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1, "only the leader misses");
        assert_eq!(s.full_hits, 3, "waiters are served after the publish");
        assert_eq!(s.coalesced, 3, "each waiter waited on the flight");
        assert_eq!(s.rows_computed, 4);
        assert!(
            cache.inflight.lock().expect("inflight lock").is_empty(),
            "flight retired"
        );
    }

    #[test]
    fn record_lookups_coalesce_too() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;

        let cache = MeasureCache::new();
        let k = key(78);
        let calls = AtomicUsize::new(0);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let (cache, k, calls) = (&cache, &k, &calls);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                cache.record(k, || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    started_tx.send(()).expect("main alive");
                    go_rx.recv().expect("release signal");
                    (vec![1.5], 3)
                })
            });
            started_rx.recv().expect("leader started");
            let waiter = scope.spawn(move || {
                cache.record(k, || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    (vec![1.5], 3)
                })
            });
            loop {
                let joined = {
                    let inflight = cache.inflight.lock().expect("inflight lock");
                    inflight
                        .get(k.canon())
                        .map(Arc::strong_count)
                        .unwrap_or(usize::MAX)
                };
                if joined >= 2 {
                    break;
                }
                std::thread::yield_now();
            }
            go_tx.send(()).expect("leader alive");
            assert_eq!(waiter.join().expect("waiter"), (vec![1.5], 3));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.records_computed, s.records_served), (1, 1));
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn panicking_leader_releases_waiters() {
        // A leader whose compute panics must retire the flight so a
        // waiter can take over and compute — never deadlock.
        let cache = MeasureCache::new();
        let k = key(79);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.matrix(&k, 2, 1, |_| panic!("compute exploded"));
        }));
        assert!(res.is_err());
        assert!(
            cache.inflight.lock().expect("inflight lock").is_empty(),
            "flight retired on unwind"
        );
        // The key is still computable afterwards.
        assert_eq!(cache.matrix(&k, 2, 1, rowfn), rowfn(0..2));
    }

    #[test]
    fn publish_uses_tmp_rename_and_keeps_longer_records() {
        let dir = std::env::temp_dir().join(format!(
            "varbench-cache-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let k = key(21);
        let cache = MeasureCache::with_dir(&dir);
        let path = cache.record_path(&k).expect("persistent");
        cache.matrix(&k, 5, 1, rowfn);
        // No temporary is left visible next to the published record.
        let names: Vec<String> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "exactly the published record: {names:?}");
        assert!(!names[0].contains(".tmp."), "no temp residue: {names:?}");

        // A second instance over the same directory must not shrink the
        // 5-row record when it publishes a 3-row prefix... which it never
        // does: the prefix is a full hit served from disk.
        let other = MeasureCache::with_dir(&dir);
        assert_eq!(other.matrix(&k, 3, 1, |_| unreachable!()), rowfn(0..3));
        // Even a forced re-persist of a shorter entry is skipped.
        other.persist(
            &Entry {
                cols: 1,
                values: rowfn(0..3),
                extendable: true,
            },
            &k,
        );
        let fresh = MeasureCache::with_dir(&dir);
        assert_eq!(
            fresh.matrix(&k, 5, 1, |_| unreachable!("5 rows still on disk")),
            rowfn(0..5)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_drops_stale_versions_torn_records_and_orphan_tmps() {
        let dir = std::env::temp_dir().join(format!(
            "varbench-cache-gc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MeasureCache::with_dir(&dir);
        let k = key(31);
        cache.matrix(&k, 4, 1, rowfn);
        let vdir = dir.join(format!("v{CACHE_FORMAT_VERSION}"));

        // Plant: a stale-format version dir, a torn record, a misfiled
        // (filename/key mismatch) record, an orphan temp, and a file the
        // gc must NOT touch (unrelated user data next to the store).
        let stale = dir.join("v1");
        std::fs::create_dir_all(&stale).unwrap();
        std::fs::write(stale.join("aaaa.rec"), "varbench-cache 1\n...").unwrap();
        std::fs::write(vdir.join("0123456789abcdef.rec"), "torn garbage").unwrap();
        let real = cache.record_path(&k).unwrap();
        let misfiled = vdir.join("ffffffffffffffff.rec");
        std::fs::copy(&real, &misfiled).unwrap();
        std::fs::write(vdir.join("dead.rec.tmp.1234.0"), "half a publi").unwrap();
        std::fs::write(dir.join("README"), "user data, not a record").unwrap();

        let report = gc_dir(&dir).expect("gc");
        assert_eq!(report.kept_records, 1);
        assert_eq!(report.stale_version_files, 1);
        assert_eq!(report.torn_files, 2, "torn + misfiled");
        assert_eq!(report.tmp_files, 1);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(report.files_removed(), 4);
        assert!(!stale.exists(), "stale version dir dropped");
        assert!(!misfiled.exists());
        assert!(dir.join("README").exists(), "unrelated files untouched");

        // The surviving record still replays bit-exactly.
        let fresh = MeasureCache::with_dir(&dir);
        assert_eq!(
            fresh.matrix(&k, 4, 1, |_| unreachable!("record survived gc")),
            rowfn(0..4)
        );
        // Idempotent: a second pass reclaims nothing.
        let again = gc_dir(&dir).expect("gc");
        assert_eq!(again.files_removed(), 0);
        assert_eq!(again.kept_records, 1);
        // A missing directory is an empty report, not an error.
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(gc_dir(&dir).expect("missing dir ok"), GcReport::default());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = MeasureCache::new();
        let k = key(42);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let k = &k;
                scope.spawn(move || {
                    for n in 1..=8 {
                        let got = cache.matrix(k, n + t % 2, 1, rowfn);
                        assert_eq!(got, rowfn(0..n + t % 2));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
