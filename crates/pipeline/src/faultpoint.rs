//! Deterministic fault injection for crash-safety tests.
//!
//! Production code marks its interesting failure windows with a named
//! [`faultpoint`] call — e.g. the measurement cache calls
//! `faultpoint("publish:after-tmp")` between writing a temp file and
//! renaming it into place. Tests then *arm* a site, either through the
//! [`FAULT_ENV`] environment variable (read once per process; the way to
//! reach real worker subprocesses) or through [`arm_local`] (a
//! thread-local guard for in-process unit tests), and the armed action
//! fires when execution crosses the site.
//!
//! # Spec grammar
//!
//! `VARBENCH_FAULT` holds one or more `;`-separated specs, each
//! `<site>:<action>[@N]`:
//!
//! * `publish:after-tmp:kill` — abort the process (closest `std`
//!   equivalent of `kill -9`: no destructors, no unwinding) the first
//!   time the site is crossed;
//! * `claim:before-create:delay=250` — sleep 250 ms at the site (plain
//!   `delay` sleeps 100 ms); widens race windows on demand;
//! * `worker:mid-row:panic` — panic at the site (an unwinding crash, as
//!   opposed to `kill`'s hard abort);
//! * `worker:mid-row:kill1=/tmp/killed` — abort only in the first
//!   process that atomically creates the sentinel path. This is how a
//!   fleet test kills *exactly one* worker when every worker inherits
//!   the same environment;
//! * a trailing `@N` (1-based) arms the action on the Nth crossing of
//!   the site instead of the first.
//!
//! The action token is everything after the spec's *last* `:` (sites
//! themselves contain colons); sentinel paths containing `:` are
//! therefore not representable — keep them colon-free.
//!
//! # Compile gating
//!
//! Faultpoints are real code in debug builds (`debug_assertions`) and in
//! release builds with the `chaos` feature; otherwise [`faultpoint`]
//! compiles to an empty `#[inline(always)]` no-op, so the measurement
//! hot path pays nothing in production. A malformed armed spec panics at
//! the first faultpoint crossing — a typo'd fault test must fail loudly,
//! not pass vacuously.

#![deny(missing_docs)]

/// Environment variable holding the fault spec(s). See the module docs
/// for the grammar.
pub const FAULT_ENV: &str = "VARBENCH_FAULT";

#[cfg(any(debug_assertions, feature = "chaos"))]
mod imp {
    use super::FAULT_ENV;
    use std::cell::RefCell;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) enum Action {
        Kill,
        Panic,
        Delay(u64),
        KillOnce(PathBuf),
    }

    pub(super) struct Spec {
        site: String,
        nth: Option<u64>,
        action: Action,
        hits: AtomicU64,
    }

    pub(super) fn parse_spec(raw: &str) -> Result<Spec, String> {
        let raw = raw.trim();
        // Optional `@N` trigger index (applies to the whole spec).
        let (body, nth) = match raw.rsplit_once('@') {
            Some((body, n)) => match n.parse::<u64>() {
                Ok(n) if n >= 1 => (body, Some(n)),
                _ => return Err(format!("bad trigger index in fault spec {raw:?}")),
            },
            None => (raw, None),
        };
        let Some((site, action_tok)) = body.rsplit_once(':') else {
            return Err(format!(
                "fault spec {raw:?} has no action (want site:action)"
            ));
        };
        let action = if action_tok == "kill" {
            Action::Kill
        } else if action_tok == "panic" {
            Action::Panic
        } else if action_tok == "delay" {
            Action::Delay(100)
        } else if let Some(ms) = action_tok.strip_prefix("delay=") {
            Action::Delay(
                ms.parse()
                    .map_err(|_| format!("bad delay in fault spec {raw:?}"))?,
            )
        } else if let Some(path) = action_tok.strip_prefix("kill1=") {
            if path.is_empty() {
                return Err(format!("empty sentinel path in fault spec {raw:?}"));
            }
            Action::KillOnce(PathBuf::from(path))
        } else {
            return Err(format!(
                "unknown action {action_tok:?} in fault spec {raw:?}"
            ));
        };
        if site.is_empty() {
            return Err(format!("empty site in fault spec {raw:?}"));
        }
        Ok(Spec {
            site: site.to_string(),
            nth,
            action,
            hits: AtomicU64::new(0),
        })
    }

    fn env_specs() -> &'static [Spec] {
        static SPECS: OnceLock<Vec<Spec>> = OnceLock::new();
        SPECS.get_or_init(|| match std::env::var(FAULT_ENV) {
            Err(_) => Vec::new(),
            Ok(raw) => raw
                .split(';')
                .filter(|s| !s.trim().is_empty())
                .map(|s| parse_spec(s).unwrap_or_else(|e| panic!("{FAULT_ENV}: {e}")))
                .collect(),
        })
    }

    thread_local! {
        static LOCAL: RefCell<Vec<Spec>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII guard for a thread-locally armed fault spec.
    pub struct LocalArm;

    impl Drop for LocalArm {
        fn drop(&mut self) {
            LOCAL.with(|l| {
                l.borrow_mut().pop();
            });
        }
    }

    pub(super) fn arm_local(spec: &str) -> LocalArm {
        let spec = parse_spec(spec).unwrap_or_else(|e| panic!("arm_local: {e}"));
        LOCAL.with(|l| l.borrow_mut().push(spec));
        LocalArm
    }

    pub(super) fn hit(site: &str) {
        // Thread-local specs first (unit tests), then the process-wide
        // environment table (subprocess fleets).
        let local_action = LOCAL.with(|l| {
            let specs = l.borrow();
            specs.iter().filter(|s| s.site == site).find_map(triggered)
        });
        if let Some(action) = local_action {
            fire(site, &action);
        }
        for spec in env_specs().iter().filter(|s| s.site == site) {
            if let Some(action) = triggered(spec) {
                fire(site, &action);
            }
        }
    }

    fn triggered(spec: &Spec) -> Option<Action> {
        let hit = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match spec.nth {
            Some(n) if hit != n => None,
            None if hit != 1 && !matches!(spec.action, Action::Delay(_)) => None,
            _ => Some(spec.action.clone()),
        }
    }

    fn fire(site: &str, action: &Action) {
        match action {
            // abort(): no unwinding, no destructors, exit code from a
            // signal — the honest stand-in for kill -9.
            Action::Kill => std::process::abort(),
            Action::Panic => panic!("faultpoint {site}: armed panic"),
            Action::Delay(ms) => std::thread::sleep(Duration::from_millis(*ms)),
            Action::KillOnce(path) => {
                if std::fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(path)
                    .is_ok()
                {
                    std::process::abort();
                }
            }
        }
    }
}

/// Crosses the named fault site: if a matching spec is armed (see the
/// module docs) its action fires here; otherwise this is free.
#[cfg(any(debug_assertions, feature = "chaos"))]
pub fn faultpoint(site: &str) {
    imp::hit(site);
}

/// Crosses the named fault site: compiled to nothing in this build
/// (release without the `chaos` feature).
#[cfg(not(any(debug_assertions, feature = "chaos")))]
#[inline(always)]
pub fn faultpoint(_site: &str) {}

/// RAII guard from [`arm_local`]: the spec stays armed until this drops.
#[cfg(any(debug_assertions, feature = "chaos"))]
pub use imp::LocalArm;

/// Arms `spec` (same grammar as [`FAULT_ENV`], e.g. `"x:panic"`) for the
/// current thread until the returned guard drops. Unit tests use this to
/// exercise fault sites without mutating the process environment.
#[cfg(any(debug_assertions, feature = "chaos"))]
pub fn arm_local(spec: &str) -> LocalArm {
    imp::arm_local(spec)
}

#[cfg(all(test, any(debug_assertions, feature = "chaos")))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_free() {
        faultpoint("nobody:armed:this");
    }

    #[test]
    #[should_panic(expected = "faultpoint unit:site: armed panic")]
    fn armed_panic_fires() {
        let _arm = arm_local("unit:site:panic");
        faultpoint("unit:site");
    }

    #[test]
    fn panic_fires_only_on_requested_hit() {
        let _arm = arm_local("unit:nth:panic@3");
        faultpoint("unit:nth");
        faultpoint("unit:nth"); // hits 1 and 2: nothing
        let caught = std::panic::catch_unwind(|| faultpoint("unit:nth"));
        assert!(caught.is_err(), "third crossing fires");
    }

    #[test]
    fn disarm_on_guard_drop() {
        {
            let _arm = arm_local("unit:scoped:panic");
        }
        faultpoint("unit:scoped"); // guard dropped: free again
    }

    #[test]
    fn kill_once_skips_when_sentinel_exists() {
        let dir = std::env::temp_dir().join(format!("varbench-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sentinel = dir.join("killed");
        std::fs::write(&sentinel, b"prior victim").unwrap();
        let _arm = arm_local(&format!("unit:kill1:kill1={}", sentinel.display()));
        // Someone already died for this sentinel: we survive.
        faultpoint("unit:kill1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delay_fires_without_blocking_forever() {
        let _arm = arm_local("unit:delay:delay=1");
        faultpoint("unit:delay");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "noaction",
            "site:",
            "site:frobnicate",
            "site:delay=abc",
            "site:kill1=",
            "site:kill@0",
            ":kill",
        ] {
            assert!(imp::parse_spec(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        for good in [
            "publish:after-tmp:kill",
            "claim:before-create:delay=250",
            "worker:mid-row:panic",
            "worker:mid-row:kill1=/tmp/x",
            "publish:after-tmp:kill@2",
            "a:delay",
        ] {
            assert!(imp::parse_spec(good).is_ok(), "{good:?} should parse");
        }
    }
}
