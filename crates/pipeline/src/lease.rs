//! Crash-safe work leases over the shared cache directory.
//!
//! The worker fleet (`varbench worker`) coordinates through the same
//! directory the [`crate::cache::MeasureCache`] persists to — the
//! ROADMAP's "cache directory as a coordination substrate". Two small
//! namespaces live *beside* the records, under the current format
//! version directory:
//!
//! * `v<N>/queue/<stem>.job` — one pending unit of work, published
//!   atomically (tmp + rename) by the dispatch driver. The payload
//!   belongs to the bench layer; this module only fixes the location,
//!   the `varbench-job 1` header line, and the `job <id>` line that
//!   ties a file to its lease;
//! * `v<N>/leases/<stem>.lease` — who is computing that unit right now.
//!
//! `<stem>` is the FNV-1a hash of the job id (for study units the job id
//! IS the measurement's canonical cache key), so a job and its lease
//! share a filename stem, and neither ever appears inside a cache key —
//! the serial key canon is untouched by construction (the L004
//! firewall).
//!
//! # Protocol
//!
//! * **Claim** is an atomic `create_new` of the lease file: exactly one
//!   process can create it, however many race. The lease records the
//!   owner, a generation stamp (1 on first claim) and state `held`.
//! * **Reclaim** (driver-only): when a row times out with no progress,
//!   the driver rewrites the lease `state` to `open` (atomic tmp +
//!   rename), keeping the generation it observed — but only if the
//!   lease still shows that generation, so a lease that changed hands
//!   in the meantime is never yanked.
//! * **Takeover**: a worker that finds an `open` lease may rewrite it to
//!   `held` with generation + 1 (atomic rename). Two racing takeovers
//!   both "win" the rename; both compute; the cache's atomic publish
//!   and content addressing make the duplicate harmless.
//! * **Release**: the finishing worker deletes its lease and job file.
//!
//! Every race in this protocol degrades to *duplicate computation*,
//! never to corruption: leases only decide **who** computes a row, while
//! the content-addressed record decides **what** is stored — and
//! identical keys compute identical bytes. That is the whole
//! crash-safety argument, and `crates/bench/tests/worker_fleet.rs`
//! enforces it with real killed processes.

#![deny(missing_docs)]

use std::io;
use std::path::{Path, PathBuf};

use crate::cache::{fnv1a64, CACHE_FORMAT_VERSION};
use crate::faultpoint::faultpoint;

/// First line of every lease file; a file without it is torn or alien.
pub const LEASE_HEADER: &str = "varbench-lease 1";

/// First line of every queued job file. The rest of the payload belongs
/// to the enqueuing layer, except a `job <id>` second line (see
/// [`job_id_of`]).
pub const JOB_HEADER: &str = "varbench-job 1";

/// The lease namespace under `dir` (the cache root).
pub fn leases_dir(dir: &Path) -> PathBuf {
    dir.join(format!("v{CACHE_FORMAT_VERSION}")).join("leases")
}

/// The pending-work namespace under `dir` (the cache root).
pub fn queue_dir(dir: &Path) -> PathBuf {
    dir.join(format!("v{CACHE_FORMAT_VERSION}")).join("queue")
}

/// The filename stem shared by a job id's queue file and lease file.
pub fn stem(job_id: &str) -> String {
    format!("{:016x}", fnv1a64(job_id.as_bytes()))
}

/// Path of the lease file for `job_id`.
pub fn lease_path(dir: &Path, job_id: &str) -> PathBuf {
    leases_dir(dir).join(format!("{}.lease", stem(job_id)))
}

/// Path of the queue file for `job_id`.
pub fn job_path(dir: &Path, job_id: &str) -> PathBuf {
    queue_dir(dir).join(format!("{}.job", stem(job_id)))
}

/// A parsed lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The job id this lease covers (for study units: the measurement's
    /// canonical cache key).
    pub job: String,
    /// Who holds (or last held) the lease, e.g. `worker-<pid>`.
    pub owner: String,
    /// Ownership generation: 1 on first claim, +1 per takeover.
    pub generation: u64,
    /// `true` when the driver reclaimed the lease and it awaits takeover.
    pub open: bool,
}

/// Outcome of [`claim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The caller now holds the lease at this generation and must
    /// compute the job, then [`release`] it.
    Acquired(u64),
    /// Someone else holds the lease (an unparseable — mid-write — lease
    /// reads as held by an unknown owner at generation 0: claiming must
    /// fail safe, toward duplicate *waiting*, not duplicate ownership).
    Busy(Lease),
}

fn render(lease: &Lease) -> String {
    format!(
        "{LEASE_HEADER}\njob {}\nowner {}\ngeneration {}\nstate {}\n",
        lease.job,
        lease.owner,
        lease.generation,
        if lease.open { "open" } else { "held" }
    )
}

fn parse(text: &str) -> Option<Lease> {
    let mut lines = text.lines();
    if lines.next()? != LEASE_HEADER {
        return None;
    }
    let job = lines.next()?.strip_prefix("job ")?.to_string();
    let owner = lines.next()?.strip_prefix("owner ")?.to_string();
    let generation = lines.next()?.strip_prefix("generation ")?.parse().ok()?;
    let open = match lines.next()?.strip_prefix("state ")? {
        "open" => true,
        "held" => false,
        _ => return None,
    };
    Some(Lease {
        job,
        owner,
        generation,
        open,
    })
}

/// Reads and parses the lease for `job_id`, if one exists and is whole.
pub fn read_lease(dir: &Path, job_id: &str) -> Option<Lease> {
    let text = std::fs::read_to_string(lease_path(dir, job_id)).ok()?;
    parse(&text)
}

/// Atomically replaces the lease file with `lease` (tmp + rename, the
/// cache's publish discipline).
fn replace(path: &Path, lease: &Lease) -> io::Result<()> {
    let tmp = path.with_extension(format!("lease.tmp.{}", std::process::id()));
    std::fs::write(&tmp, render(lease))?;
    faultpoint("claim:before-rename");
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Tries to claim the lease for `job_id` on behalf of `owner`.
///
/// First claim is an atomic `create_new`; an `open` (reclaimed) lease is
/// taken over at generation + 1. A held lease returns
/// [`ClaimOutcome::Busy`].
pub fn claim(dir: &Path, job_id: &str, owner: &str) -> io::Result<ClaimOutcome> {
    let ldir = leases_dir(dir);
    std::fs::create_dir_all(&ldir)?;
    let path = lease_path(dir, job_id);
    faultpoint("claim:before-create");
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
    {
        Ok(mut f) => {
            faultpoint("claim:after-create");
            let lease = Lease {
                job: job_id.to_string(),
                owner: owner.to_string(),
                generation: 1,
                open: false,
            };
            io::Write::write_all(&mut f, render(&lease).as_bytes())?;
            Ok(ClaimOutcome::Acquired(1))
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
            let current = read_lease(dir, job_id).unwrap_or(Lease {
                job: job_id.to_string(),
                owner: "?".to_string(),
                generation: 0,
                open: false,
            });
            if current.open {
                let next = Lease {
                    job: job_id.to_string(),
                    owner: owner.to_string(),
                    generation: current.generation + 1,
                    open: false,
                };
                replace(&path, &next)?;
                Ok(ClaimOutcome::Acquired(next.generation))
            } else {
                Ok(ClaimOutcome::Busy(current))
            }
        }
        Err(e) => Err(e),
    }
}

/// Driver-side reclaim: marks the lease `open` for takeover, but only if
/// it still shows `expect_generation` and is still held — a lease that
/// completed (file gone) or changed hands is left alone. Returns whether
/// the lease was reclaimed.
pub fn reclaim(dir: &Path, job_id: &str, expect_generation: u64) -> io::Result<bool> {
    let Some(current) = read_lease(dir, job_id) else {
        return Ok(false);
    };
    if current.open || current.generation != expect_generation {
        return Ok(false);
    }
    let opened = Lease {
        open: true,
        ..current
    };
    replace(&lease_path(dir, job_id), &opened)?;
    Ok(true)
}

/// Deletes the lease for `job_id` if `owner` still holds it (a finisher
/// whose lease was reclaimed and re-claimed leaves the new owner's lease
/// alone). Returns whether a lease file was removed.
pub fn release(dir: &Path, job_id: &str, owner: &str) -> bool {
    match read_lease(dir, job_id) {
        Some(l) if l.owner == owner && !l.open => {
            faultpoint("release:before-remove");
            std::fs::remove_file(lease_path(dir, job_id)).is_ok()
        }
        _ => false,
    }
}

/// All whole lease files under `dir`, sorted by filename stem (the scan
/// order is deterministic for stats and tests).
pub fn scan_leases(dir: &Path) -> Vec<Lease> {
    let mut found: Vec<(String, Lease)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(leases_dir(dir)) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".lease") {
                continue;
            }
            if let Some(lease) = std::fs::read_to_string(entry.path())
                .ok()
                .and_then(|t| parse(&t))
            {
                found.push((name, lease));
            }
        }
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    found.into_iter().map(|(_, l)| l).collect()
}

/// The job ids of the queued job files under `dir`, sorted by filename
/// stem — the worker's deterministic scan order. Torn or alien files
/// (bad header, no `job ` line) are skipped; [`gc`] reaps them.
pub fn scan_queue(dir: &Path) -> Vec<String> {
    let mut found: Vec<(String, String)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(queue_dir(dir)) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".job") {
                continue;
            }
            if let Some(id) = std::fs::read_to_string(entry.path())
                .ok()
                .as_deref()
                .and_then(job_id_of)
            {
                found.push((name, id.to_string()));
            }
        }
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    found.into_iter().map(|(_, id)| id).collect()
}

/// Extracts the job id from a queue file's text: header line, then a
/// `job <id>` line. Returns `None` for torn or alien files.
pub fn job_id_of(text: &str) -> Option<&str> {
    let mut lines = text.lines();
    if lines.next()? != JOB_HEADER {
        return None;
    }
    lines.next()?.strip_prefix("job ")
}

/// Atomically publishes a queue file for `job_id` with `payload` (the
/// enqueuing layer's serialized job; [`JOB_HEADER`] and the `job <id>`
/// line are prepended here so [`scan_queue`] and [`gc`] can read any
/// queue file without knowing the payload format). Overwrites an
/// existing file for the same id — the id is content-derived, so the
/// payload is identical by construction.
pub fn enqueue(dir: &Path, job_id: &str, payload: &str) -> io::Result<()> {
    let qdir = queue_dir(dir);
    std::fs::create_dir_all(&qdir)?;
    let path = job_path(dir, job_id);
    let tmp = path.with_extension(format!("job.tmp.{}", std::process::id()));
    std::fs::write(&tmp, format!("{JOB_HEADER}\njob {job_id}\n{payload}"))?;
    faultpoint("enqueue:before-rename");
    std::fs::rename(&tmp, &path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Removes the queue file for `job_id` (idempotent; used by the worker
/// on completion and by the driver when cancelling leftovers). Returns
/// whether a file was removed.
pub fn dequeue(dir: &Path, job_id: &str) -> bool {
    std::fs::remove_file(job_path(dir, job_id)).is_ok()
}

/// Live lease accounting for `varbench cache stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseTally {
    /// Leases currently held by a worker.
    pub active: u64,
    /// Leases reclaimed by a driver and awaiting takeover.
    pub reclaimed: u64,
    /// Total ownership handoffs observed (sum of generation − 1): how
    /// often a row's first owner did not finish it.
    pub takeovers: u64,
    /// Pending job files in the queue.
    pub queued: u64,
}

/// Tallies the lease and queue namespaces under `dir`.
pub fn tally(dir: &Path) -> LeaseTally {
    let mut t = LeaseTally::default();
    for lease in scan_leases(dir) {
        if lease.open {
            t.reclaimed += 1;
        } else {
            t.active += 1;
        }
        t.takeovers += lease.generation.saturating_sub(1);
    }
    t.queued = scan_queue(dir).len() as u64;
    t
}

/// What one lease/queue gc sweep removed (folded into the cache's
/// [`crate::cache::GcReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseGc {
    /// Stale lease files removed: torn/alien files, and leases whose job
    /// is no longer queued (completed, cancelled, or superseded — a
    /// lease without pending work can never be exercised again).
    pub stale_leases: u64,
    /// Torn or alien queue files removed.
    pub torn_jobs: u64,
    /// Orphaned temporaries removed from both namespaces.
    pub tmp_files: u64,
    /// Bytes reclaimed by this sweep.
    pub bytes_reclaimed: u64,
}

/// Sweeps the lease and queue namespaces under `dir`.
///
/// A lease is *stale* — and reaped — when it is torn, or when no queue
/// file exists for its stem (its work finished or was cancelled; a
/// crashed worker's lease on still-queued work is deliberately kept:
/// liveness is the driver's judgement via [`reclaim`], not gc's).
pub fn gc(dir: &Path) -> LeaseGc {
    let mut report = LeaseGc::default();
    let qdir = queue_dir(dir);
    let sweep = |subdir: &Path, keep_suffix: &str, report: &mut LeaseGc, is_lease: bool| {
        let Ok(entries) = std::fs::read_dir(subdir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let path = entry.path();
            let bytes = entry.metadata().map_or(0, |m| m.len());
            if name.contains(".tmp.") {
                if std::fs::remove_file(&path).is_ok() {
                    report.tmp_files += 1;
                    report.bytes_reclaimed += bytes;
                }
                continue;
            }
            let Some(file_stem) = name.strip_suffix(keep_suffix) else {
                continue; // not ours; leave it alone
            };
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            let stale = if is_lease {
                parse(&text).is_none() || !qdir.join(format!("{file_stem}.job")).exists()
            } else {
                job_id_of(&text).is_none()
            };
            if stale && std::fs::remove_file(&path).is_ok() {
                if is_lease {
                    report.stale_leases += 1;
                } else {
                    report.torn_jobs += 1;
                }
                report.bytes_reclaimed += bytes;
            }
        }
    };
    // Queue first: a torn job file removed here makes its lease stale in
    // the same pass.
    sweep(&qdir, ".job", &mut report, false);
    sweep(&leases_dir(dir), ".lease", &mut report, true);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "varbench-lease-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const JOB: &str = "v2|w=demo@1:test|fp=0000000000000000|source:init|seed=0000000000000007";

    #[test]
    fn claim_is_exclusive_then_released() {
        let dir = scratch("claim");
        assert_eq!(claim(&dir, JOB, "w1").unwrap(), ClaimOutcome::Acquired(1));
        match claim(&dir, JOB, "w2").unwrap() {
            ClaimOutcome::Busy(l) => {
                assert_eq!(l.owner, "w1");
                assert_eq!(l.generation, 1);
                assert!(!l.open);
            }
            other => panic!("second claim must be busy, got {other:?}"),
        }
        assert!(release(&dir, JOB, "w1"));
        assert_eq!(claim(&dir, JOB, "w2").unwrap(), ClaimOutcome::Acquired(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reclaim_then_takeover_bumps_generation() {
        let dir = scratch("reclaim");
        assert_eq!(claim(&dir, JOB, "w1").unwrap(), ClaimOutcome::Acquired(1));
        // Wrong expected generation: left alone.
        assert!(!reclaim(&dir, JOB, 2).unwrap());
        assert!(reclaim(&dir, JOB, 1).unwrap());
        let l = read_lease(&dir, JOB).unwrap();
        assert!(l.open);
        assert_eq!(l.generation, 1, "reclaim keeps the generation");
        // Reclaiming an already-open lease is a no-op.
        assert!(!reclaim(&dir, JOB, 1).unwrap());
        // Takeover claims at generation + 1.
        assert_eq!(claim(&dir, JOB, "w2").unwrap(), ClaimOutcome::Acquired(2));
        let l = read_lease(&dir, JOB).unwrap();
        assert_eq!((l.owner.as_str(), l.generation, l.open), ("w2", 2, false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn release_is_owner_checked() {
        let dir = scratch("owner");
        claim(&dir, JOB, "w1").unwrap();
        assert!(!release(&dir, JOB, "w2"), "not the owner");
        assert!(read_lease(&dir, JOB).is_some());
        // The original owner finishing after a reclaim + takeover must
        // not delete the new owner's lease.
        reclaim(&dir, JOB, 1).unwrap();
        claim(&dir, JOB, "w2").unwrap();
        assert!(!release(&dir, JOB, "w1"));
        assert_eq!(read_lease(&dir, JOB).unwrap().owner, "w2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_reads_as_busy_unknown() {
        let dir = scratch("torn");
        std::fs::create_dir_all(leases_dir(&dir)).unwrap();
        std::fs::write(lease_path(&dir, JOB), "half a lea").unwrap();
        match claim(&dir, JOB, "w1").unwrap() {
            ClaimOutcome::Busy(l) => assert_eq!((l.owner.as_str(), l.generation), ("?", 0)),
            other => panic!("torn lease must read busy, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_round_trips_and_scans_deterministically() {
        let dir = scratch("queue");
        enqueue(&dir, "job-b", "payload b\n").unwrap();
        enqueue(&dir, "job-a", "payload a\n").unwrap();
        let mut expect = [("job-a", stem("job-a")), ("job-b", stem("job-b"))];
        expect.sort_by(|a, b| a.1.cmp(&b.1));
        assert_eq!(
            scan_queue(&dir),
            expect
                .iter()
                .map(|(id, _)| id.to_string())
                .collect::<Vec<_>>()
        );
        let text = std::fs::read_to_string(job_path(&dir, "job-a")).unwrap();
        assert_eq!(job_id_of(&text), Some("job-a"));
        assert!(text.ends_with("payload a\n"));
        assert!(dequeue(&dir, "job-a"));
        assert!(!dequeue(&dir, "job-a"), "idempotent");
        assert_eq!(scan_queue(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tally_counts_lease_states_and_queue_depth() {
        let dir = scratch("tally");
        enqueue(&dir, "a", "p\n").unwrap();
        enqueue(&dir, "b", "p\n").unwrap();
        claim(&dir, "a", "w1").unwrap();
        claim(&dir, "b", "w1").unwrap();
        reclaim(&dir, "b", 1).unwrap();
        claim(&dir, "b", "w2").unwrap(); // takeover: generation 2
        reclaim(&dir, "b", 2).unwrap();
        let t = tally(&dir);
        assert_eq!(t.active, 1);
        assert_eq!(t.reclaimed, 1);
        assert_eq!(t.takeovers, 1);
        assert_eq!(t.queued, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_reaps_orphans_but_keeps_live_work() {
        let dir = scratch("gc");
        // Live: queued job with a held lease.
        enqueue(&dir, "live", "p\n").unwrap();
        claim(&dir, "live", "w1").unwrap();
        // Stale: lease whose job finished (file dequeued).
        enqueue(&dir, "done", "p\n").unwrap();
        claim(&dir, "done", "w1").unwrap();
        dequeue(&dir, "done");
        // Torn lease, torn job, and orphan temporaries.
        std::fs::write(leases_dir(&dir).join("feedbeef.lease"), "garbage").unwrap();
        std::fs::write(queue_dir(&dir).join("feedbeef.job"), "garbage").unwrap();
        std::fs::write(leases_dir(&dir).join("x.lease.tmp.7"), "t").unwrap();
        std::fs::write(queue_dir(&dir).join("y.job.tmp.7"), "t").unwrap();

        let report = gc(&dir);
        assert_eq!(report.stale_leases, 2, "done + torn lease");
        assert_eq!(report.torn_jobs, 1);
        assert_eq!(report.tmp_files, 2);
        assert!(report.bytes_reclaimed > 0);
        assert!(read_lease(&dir, "live").is_some(), "live lease kept");
        assert_eq!(scan_queue(&dir), vec!["live".to_string()]);
        // Idempotent.
        assert_eq!(gc(&dir), LeaseGc::default());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
