//! The workload abstraction: any benchmark pipeline the variance
//! estimators can measure.
//!
//! The paper's estimators and decision criteria apply to *any* learning
//! pipeline, not just the five case studies shipped here. [`Workload`]
//! captures the minimal contract they need: an identity (for cache
//! addressing and reports), a hyperparameter search space with defaults,
//! the set of active variance sources, and the two measurement entry
//! points — `run_with_params` (train on train+valid, report the test
//! metric) and `run_valid_test` (train on train only, report both the
//! validation and test metrics; the inner loop of hyperparameter
//! optimization).
//!
//! Everything downstream — `HOpt` ([`crate::hopt`]), every estimator in
//! `varbench_core::estimator`, the measurement cache, the `Study` builder
//! and the `varbench` CLI — is generic over `&dyn Workload`, so a
//! user-defined workload plugs into the entire stack. See
//! `examples/custom_workload.rs` for a complete implementation in under
//! 60 lines.
//!
//! # Determinism contract
//!
//! `run_with_params` and `run_valid_test` must be **pure functions of
//! `(params, seeds)`**: identical inputs must reproduce identical metrics
//! bit for bit, and sources not listed in [`Workload::active_sources`]
//! must not influence the result. The estimators rely on this for
//! bit-identical parallel execution and for the measurement cache.

#![deny(missing_docs)]

use crate::variance::{SeedAssignment, VarianceSource};
use varbench_hpo::SearchSpace;

/// A complete, self-contained benchmark pipeline (the paper's §2.1
/// `P(S_tv)` minus the hyperparameter-optimization loop, which
/// [`crate::hopt`] provides generically on top of this trait).
///
/// The trait is object-safe: the whole measurement stack works through
/// `&dyn Workload`.
pub trait Workload: Send + Sync {
    /// Short stable identifier (e.g. `cifar10-vgg11`). Two workloads may
    /// share a name only if [`Workload::version`] or
    /// [`Workload::fingerprint`] distinguishes them — all three are part
    /// of every cache key.
    fn name(&self) -> &str;

    /// Implementation version. Bump when the pipeline's behaviour changes
    /// so stale cached measurements can never be served for the new code.
    fn version(&self) -> u32 {
        1
    }

    /// Label of the size preset this instance was built at (`test` /
    /// `quick` / `full` for the built-in workloads). Part of the cache
    /// identity: the same workload at two scales measures different
    /// quantities.
    fn scale_label(&self) -> &'static str {
        "default"
    }

    /// Display name of the reported metric (higher is better).
    fn metric_name(&self) -> &'static str;

    /// The hyperparameter search space `HOpt` explores.
    fn search_space(&self) -> &SearchSpace;

    /// Default hyperparameters (the "pre-selected reasonable choices"
    /// used for the ξ_O variance studies). Must match the search-space
    /// arity.
    fn default_params(&self) -> &[f64];

    /// The variance sources that exist in this pipeline. Sources not
    /// listed here must not influence the measures.
    fn active_sources(&self) -> &[VarianceSource];

    /// Content fingerprint mixed into every cache key alongside
    /// [`Workload::name`] and [`Workload::version`].
    ///
    /// The default hashes the metric, the search space and the default
    /// hyperparameters — enough to separate two differently-configured
    /// workloads that share a name. Override it if your workload has
    /// configuration (pool sizes, difficulty knobs) beyond those.
    fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(self.metric_name().as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(format!("{:?}", self.search_space().dims()).as_bytes());
        bytes.push(0);
        for p in self.default_params() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        crate::cache::fnv1a64(&bytes)
    }

    /// One complete *fixed-hyperparameter* measure: split, train on
    /// train+valid, return the held-out test metric. The inner loop of
    /// the paper's Algorithm 2 and of every ξ_O variance study.
    fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64;

    /// Like [`Workload::run_with_params`] but trains on the train portion
    /// only and returns `(validation metric, test metric)` — used where
    /// both are needed, e.g. the validation/test correlation study.
    fn run_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64);

    /// The validation metric alone — the `HOpt` objective, called once
    /// per trial. Defaults to [`Workload::run_valid_test`]`.0`; override
    /// it when evaluating the test set costs something (the built-in
    /// case studies skip the test-set forward passes here).
    fn run_valid(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        self.run_valid_test(params, seeds).0
    }

    /// The canonical cache identity: `name@vN:scale`. Every cache key
    /// embeds this together with [`Workload::fingerprint`].
    fn cache_id(&self) -> String {
        format!("{}@v{}:{}", self.name(), self.version(), self.scale_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{CaseStudy, Scale};

    #[test]
    fn case_study_implements_workload() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let w: &dyn Workload = &cs;
        assert_eq!(w.name(), "glue-rte-bert");
        assert_eq!(w.scale_label(), "test");
        assert_eq!(w.metric_name(), "accuracy");
        assert_eq!(w.default_params().len(), w.search_space().len());
        assert_eq!(w.cache_id(), "glue-rte-bert@v1:test");
        let seeds = SeedAssignment::all_fixed(1);
        let m = w.run_with_params(w.default_params(), &seeds);
        assert_eq!(
            m,
            cs.run_with_params(cs.default_params(), &seeds),
            "trait and inherent paths must agree"
        );
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let a = CaseStudy::glue_rte_bert(Scale::Test);
        let b = CaseStudy::mhc_mlp(Scale::Test);
        assert_ne!(Workload::fingerprint(&a), Workload::fingerprint(&b));
        // Same configuration fingerprints identically.
        let a2 = CaseStudy::glue_rte_bert(Scale::Test);
        assert_eq!(Workload::fingerprint(&a), Workload::fingerprint(&a2));
    }
}
