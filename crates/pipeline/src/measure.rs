//! Performance metrics used by the case studies.

use varbench_data::Dataset;
use varbench_models::{metrics, Mlp};

/// Which metric a case study reports — the `e` of the paper's
/// `R̂_e(h, S)`. All metrics here are oriented *higher is better*; HPO
/// minimizes `1 − metric`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Classification accuracy (CIFAR10, GLUE tasks).
    Accuracy,
    /// Mean intersection-over-union of predicted masks (PascalVOC analog).
    MeanIou,
    /// ROC-AUC of a regression score against binarized targets (MHC
    /// analog; binding threshold 0.5 as in normalized-affinity convention).
    Auc,
}

impl MetricKind {
    /// Display name of the metric.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Accuracy => "accuracy",
            MetricKind::MeanIou => "mean IoU",
            MetricKind::Auc => "AUC",
        }
    }

    /// Evaluates a trained model on the pool examples given by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the model head does not match the
    /// dataset's targets.
    pub fn evaluate(&self, model: &Mlp, pool: &Dataset, indices: &[usize]) -> f64 {
        assert!(!indices.is_empty(), "cannot evaluate on an empty set");
        match self {
            MetricKind::Accuracy => {
                let pred: Vec<usize> = indices.iter().map(|&i| model.predict_class(pool.x(i))).collect();
                let truth: Vec<usize> = indices.iter().map(|&i| pool.label(i)).collect();
                metrics::accuracy(&pred, &truth)
            }
            MetricKind::MeanIou => {
                let pred: Vec<Vec<f64>> = indices.iter().map(|&i| model.predict_mask(pool.x(i))).collect();
                let truth: Vec<Vec<f64>> = indices.iter().map(|&i| pool.mask(i).to_vec()).collect();
                metrics::mean_iou(&pred, &truth)
            }
            MetricKind::Auc => {
                let scores: Vec<f64> = indices.iter().map(|&i| model.predict_value(pool.x(i))).collect();
                let labels: Vec<bool> = indices.iter().map(|&i| pool.value(i) > 0.5).collect();
                metrics::roc_auc(&scores, &labels)
            }
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(MetricKind::Accuracy.name(), "accuracy");
        assert_eq!(MetricKind::MeanIou.to_string(), "mean IoU");
        assert_eq!(MetricKind::Auc.name(), "AUC");
    }
    // Model-based evaluation is exercised through the case-study tests.
}
