//! Performance metrics used by the case studies.

use varbench_data::Dataset;
use varbench_models::{metrics, EvalWorkspace, Mlp};

/// Examples per evaluation work unit.
///
/// Each chunk stages its examples into one [`EvalWorkspace`] and scores
/// them with a single batched forward pass through the batch-GEMM kernels
/// (allocation-free once the workspace slabs are warm). The chunking is a
/// fixed function of the pool size — never of the thread count — so
/// results are bit-identical for every [`ParMap`] strategy; and the
/// batched kernels preserve each example's per-element accumulation order,
/// so they are bit-identical to the per-example forward path too.
const EVAL_CHUNK: usize = 64;

thread_local! {
    /// Per-thread batched-eval scratch, reused across chunks and across
    /// [`MetricKind::evaluate`] calls. Every slab is fully overwritten by
    /// the batched pass that uses it, so reuse cannot change a result —
    /// it only removes the per-chunk allocate-and-zero round trip from
    /// the measurement hot loop (fields: forward workspace, class
    /// buffer, value buffer).
    static EVAL_SCRATCH: std::cell::RefCell<(EvalWorkspace, Vec<usize>, Vec<f64>)> =
        std::cell::RefCell::new((EvalWorkspace::new(), Vec::new(), Vec::new()));
}

/// Strategy for mapping a function over an index range, preserving index
/// order in the output.
///
/// This is the executor seam of the workspace: `varbench-pipeline` sits
/// *below* `varbench-core` in the dependency graph, so it cannot name the
/// work-stealing `Runner` in `varbench_core::exec` directly. Instead the
/// metric hot paths are generic over this trait; [`SerialMap`] is the
/// zero-cost default, and `Runner` implements `ParMap` upstream so callers
/// that hold one can fan per-example evaluation out across cores.
///
/// Implementations must call `f` for every index in `0..n` exactly once
/// and return the results in index order — callers rely on bit-identical
/// output regardless of how the work is scheduled.
pub trait ParMap {
    /// Maps `f` over `0..n`, returning results in index order.
    fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;
}

/// The trivial sequential [`ParMap`]: a plain loop on the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialMap;

impl ParMap for SerialMap {
    fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..n).map(f).collect()
    }
}

/// Which metric a case study reports — the `e` of the paper's
/// `R̂_e(h, S)`. All metrics here are oriented *higher is better*; HPO
/// minimizes `1 − metric`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Classification accuracy (CIFAR10, GLUE tasks).
    Accuracy,
    /// Mean intersection-over-union of predicted masks (PascalVOC analog).
    MeanIou,
    /// ROC-AUC of a regression score against binarized targets (MHC
    /// analog; binding threshold 0.5 as in normalized-affinity convention).
    Auc,
}

impl MetricKind {
    /// Display name of the metric.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Accuracy => "accuracy",
            MetricKind::MeanIou => "mean IoU",
            MetricKind::Auc => "AUC",
        }
    }

    /// Evaluates a trained model on the pool examples given by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the model head does not match the
    /// dataset's targets.
    pub fn evaluate(&self, model: &Mlp, pool: &Dataset, indices: &[usize]) -> f64 {
        self.evaluate_with(model, pool, indices, &SerialMap)
    }

    /// [`MetricKind::evaluate`] with an explicit execution strategy: the
    /// per-chunk batched forward passes are mapped through `par`, so a parallel
    /// [`ParMap`] (e.g. `varbench_core::exec::Runner`) spreads a large
    /// evaluation pool across cores. Results are identical to the serial
    /// path for any strategy.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the model head does not match the
    /// dataset's targets.
    pub fn evaluate_with<P: ParMap>(
        &self,
        model: &Mlp,
        pool: &Dataset,
        indices: &[usize],
        par: &P,
    ) -> f64 {
        assert!(!indices.is_empty(), "cannot evaluate on an empty set");
        let n = indices.len();
        let chunks = n.div_ceil(EVAL_CHUNK);
        let chunk_of = |c: usize| &indices[c * EVAL_CHUNK..((c + 1) * EVAL_CHUNK).min(n)];
        match self {
            MetricKind::Accuracy => {
                // Exact integer hit counts sum associatively, so per-chunk
                // counting gives the same accuracy as per-example mapping.
                let hits: usize = par
                    .map_indexed(chunks, |c| {
                        let idx = chunk_of(c);
                        EVAL_SCRATCH.with(|s| {
                            let (ws, classes, _) = &mut *s.borrow_mut();
                            model.predict_classes_batch_into(
                                idx.len(),
                                |si, row| row.copy_from_slice(pool.x(idx[si])),
                                ws,
                                classes,
                            );
                            classes
                                .iter()
                                .zip(idx)
                                .filter(|&(&c, &i)| c == pool.label(i))
                                .count()
                        })
                    })
                    .into_iter()
                    .sum();
                hits as f64 / n as f64
            }
            MetricKind::MeanIou => {
                // Per-example IoUs come back in index order and are summed
                // sequentially — the same reduction order as `mean_iou`.
                let ious = par.map_indexed(chunks, |c| {
                    let idx = chunk_of(c);
                    EVAL_SCRATCH.with(|s| {
                        let (ws, _, _) = &mut *s.borrow_mut();
                        let masks = model.predict_masks_batch_into(
                            idx.len(),
                            |si, row| row.copy_from_slice(pool.x(idx[si])),
                            ws,
                        );
                        let m = masks.len() / idx.len();
                        idx.iter()
                            .enumerate()
                            .map(|(si, &i)| {
                                metrics::mask_iou(&masks[si * m..(si + 1) * m], pool.mask(i))
                            })
                            .collect::<Vec<f64>>()
                    })
                });
                ious.iter().flatten().sum::<f64>() / n as f64
            }
            MetricKind::Auc => {
                let scores = par.map_indexed(chunks, |c| {
                    let idx = chunk_of(c);
                    EVAL_SCRATCH.with(|s| {
                        let (ws, _, vals) = &mut *s.borrow_mut();
                        model.predict_values_batch_into(
                            idx.len(),
                            |si, row| row.copy_from_slice(pool.x(idx[si])),
                            ws,
                            vals,
                        );
                        vals.clone()
                    })
                });
                let scores: Vec<f64> = scores.into_iter().flatten().collect();
                let labels: Vec<bool> = indices.iter().map(|&i| pool.value(i) > 0.5).collect();
                metrics::roc_auc(&scores, &labels)
            }
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(MetricKind::Accuracy.name(), "accuracy");
        assert_eq!(MetricKind::MeanIou.to_string(), "mean IoU");
        assert_eq!(MetricKind::Auc.name(), "AUC");
    }
    // Model-based evaluation is exercised through the case-study tests.
}
