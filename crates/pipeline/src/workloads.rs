//! Built-in non-MLP workloads proving the [`Workload`] abstraction.
//!
//! The five [`CaseStudy`](crate::CaseStudy) pipelines are MLP-backed; the
//! two workloads here exercise the same estimator stack over entirely
//! different model families from the existing crates:
//!
//! * [`LinearWorkload`] — multinomial logistic regression
//!   (`varbench_models::linear::LogisticRegression`) on a binary
//!   synthetic task: SGD-trained, so data split, weight init and data
//!   order are all live variance sources;
//! * [`SyntheticWorkload`] — **closed-form** ridge regression
//!   (`varbench_models::linear::RidgeRegression`) on the synthetic
//!   binding task: the fit is deterministic given the data, so the *only*
//!   ξ_O source is the data split — a useful extreme for sanity-checking
//!   variance decompositions (every other source must measure exactly
//!   zero).
//!
//! Both are registered in the `varbench` CLI (`varbench workloads`,
//! `varbench run workload-linear workload-synth`).

#![deny(missing_docs)]

use crate::case_study::Scale;
use crate::variance::{SeedAssignment, VarianceSource};
use crate::workload::Workload;
use varbench_data::split::{oob_split, Split};
use varbench_data::synth::{
    binary_overlap, binding_regression, BinaryOverlapConfig, BindingConfig,
};
use varbench_data::Dataset;
use varbench_hpo::{Dim, SearchSpace};
use varbench_models::linear::{LogisticRegression, RidgeRegression};
use varbench_models::metrics::roc_auc;
use varbench_models::{EvalWorkspace, TrainConfig};
use varbench_rng::Rng;

/// Logistic-regression workload on a binary Gaussian-overlap task.
///
/// Search space: learning rate and L2 weight decay (both log-uniform).
/// Active sources: data split, weight init, data order, and ξ_H.
#[derive(Debug, Clone)]
pub struct LinearWorkload {
    scale: Scale,
    pool: Dataset,
    sizes: (usize, usize, usize),
    epochs: usize,
    space: SearchSpace,
    defaults: Vec<f64>,
}

impl LinearWorkload {
    /// Builds the workload at `scale` (pool generated from a fixed seed).
    pub fn new(scale: Scale) -> LinearWorkload {
        let (n_pool, n_train, n_valid, n_test, epochs) = match scale {
            Scale::Test => (300, 160, 60, 60, 3),
            Scale::Quick => (3000, 2000, 400, 400, 8),
            Scale::Full => (10_000, 7000, 1200, 1200, 15),
        };
        let mut pool_rng = Rng::seed_from_u64(0x11EA2);
        let pool = binary_overlap(
            &BinaryOverlapConfig {
                n: n_pool,
                dim: 12,
                separation: 2.2,
                label_noise: 0.08,
                p_positive: 0.5,
            },
            &mut pool_rng,
        );
        LinearWorkload {
            scale,
            pool,
            sizes: (n_train, n_valid, n_test),
            epochs,
            space: SearchSpace::new(vec![
                ("learning_rate".into(), Dim::log_uniform(1e-3, 0.5)),
                ("weight_decay".into(), Dim::log_uniform(1e-6, 0.1)),
            ]),
            defaults: vec![0.1, 1e-4],
        }
    }

    fn split(&self, split_seed: u64) -> Split {
        let (n_train, n_valid, n_test) = self.sizes;
        let mut rng = Rng::seed_from_u64(split_seed);
        oob_split(self.pool.len(), n_train, n_valid, n_test, &mut rng)
    }

    fn train(
        &self,
        params: &[f64],
        train_idx: &[usize],
        seeds: &SeedAssignment,
    ) -> LogisticRegression {
        assert_eq!(params.len(), self.space.len(), "parameter arity mismatch");
        let train = TrainConfig {
            epochs: self.epochs,
            batch_size: 32,
            learning_rate: self.space.dims()[0].1.clamp(params[0]),
            momentum: 0.9,
            weight_decay: self.space.dims()[1].1.clamp(params[1]),
            lr_gamma: 0.99,
            dropout: 0.0,
            grad_noise: 0.0,
        };
        let ds = self.pool.subset(train_idx);
        let mut ts = seeds.train_seeds();
        LogisticRegression::train(&train, &ds, &mut ts)
    }

    fn accuracy(&self, model: &LogisticRegression, indices: &[usize]) -> f64 {
        assert!(!indices.is_empty(), "cannot evaluate on an empty set");
        // One batched forward over the whole index set (bitwise identical
        // to the per-example loop); hit counting is exact integers.
        let mut ws = EvalWorkspace::new();
        let mut classes = Vec::new();
        model.predict_classes_batch_into(
            indices.len(),
            |si, row| row.copy_from_slice(self.pool.x(indices[si])),
            &mut ws,
            &mut classes,
        );
        let correct = classes
            .iter()
            .zip(indices)
            .filter(|&(&c, &i)| c == self.pool.label(i))
            .count();
        correct as f64 / indices.len() as f64
    }
}

impl Workload for LinearWorkload {
    fn name(&self) -> &str {
        "linear-logreg"
    }

    fn scale_label(&self) -> &'static str {
        self.scale.label()
    }

    fn metric_name(&self) -> &'static str {
        "accuracy"
    }

    fn search_space(&self) -> &SearchSpace {
        &self.space
    }

    fn default_params(&self) -> &[f64] {
        &self.defaults
    }

    fn active_sources(&self) -> &[VarianceSource] {
        &[
            VarianceSource::DataSplit,
            VarianceSource::WeightsInit,
            VarianceSource::DataOrder,
            VarianceSource::HyperOpt,
        ]
    }

    fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train(params, &split.train_valid(), seeds);
        self.accuracy(&model, split.test())
    }

    fn run_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64) {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train(params, split.train(), seeds);
        (
            self.accuracy(&model, split.valid()),
            self.accuracy(&model, split.test()),
        )
    }

    fn run_valid(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.train(params, split.train(), seeds);
        self.accuracy(&model, split.valid())
    }
}

/// Closed-form ridge-regression workload on the synthetic binding task,
/// scored by ROC-AUC against the binarized affinities.
///
/// The fit has no training stochasticity at all: given a split, the model
/// is a deterministic function of the data. Data split is therefore the
/// single active ξ_O source, making this workload a clean null case for
/// every other source.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    scale: Scale,
    pool: Dataset,
    sizes: (usize, usize, usize),
    space: SearchSpace,
    defaults: Vec<f64>,
}

impl SyntheticWorkload {
    /// Builds the workload at `scale` (pool generated from a fixed seed).
    pub fn new(scale: Scale) -> SyntheticWorkload {
        let (n_pool, n_train, n_valid, n_test) = match scale {
            Scale::Test => (300, 160, 60, 60),
            Scale::Quick => (4000, 2500, 600, 600),
            Scale::Full => (12_000, 8000, 1500, 1500),
        };
        let mut pool_rng = Rng::seed_from_u64(0x51D6E);
        let pool = binding_regression(
            &BindingConfig {
                n: n_pool,
                dim: 16,
                noise: 0.15,
                shift: 0.0,
            },
            &mut pool_rng,
        );
        SyntheticWorkload {
            scale,
            pool,
            sizes: (n_train, n_valid, n_test),
            space: SearchSpace::new(vec![("ridge_lambda".into(), Dim::log_uniform(1e-8, 10.0))]),
            defaults: vec![1e-2],
        }
    }

    fn split(&self, split_seed: u64) -> Split {
        let (n_train, n_valid, n_test) = self.sizes;
        let mut rng = Rng::seed_from_u64(split_seed);
        oob_split(self.pool.len(), n_train, n_valid, n_test, &mut rng)
    }

    fn fit(&self, params: &[f64], train_idx: &[usize]) -> RidgeRegression {
        assert_eq!(params.len(), self.space.len(), "parameter arity mismatch");
        let lambda = self.space.dims()[0].1.clamp(params[0]);
        RidgeRegression::fit(&self.pool.subset(train_idx), lambda)
    }

    fn auc(&self, model: &RidgeRegression, indices: &[usize]) -> f64 {
        assert!(!indices.is_empty(), "cannot evaluate on an empty set");
        // Stage the index set example-major and score it through the
        // batch GEMM kernel (bitwise identical to per-example `predict`).
        let d = self.pool.dim();
        let mut xs = vec![0.0; indices.len() * d];
        for (si, &i) in indices.iter().enumerate() {
            xs[si * d..(si + 1) * d].copy_from_slice(self.pool.x(i));
        }
        let mut scores = vec![0.0; indices.len()];
        model.predict_batch_into(&xs, &mut scores);
        let labels: Vec<bool> = indices.iter().map(|&i| self.pool.value(i) > 0.5).collect();
        roc_auc(&scores, &labels)
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        "synthetic-ridge"
    }

    fn scale_label(&self) -> &'static str {
        self.scale.label()
    }

    fn metric_name(&self) -> &'static str {
        "AUC"
    }

    fn search_space(&self) -> &SearchSpace {
        &self.space
    }

    fn default_params(&self) -> &[f64] {
        &self.defaults
    }

    fn active_sources(&self) -> &[VarianceSource] {
        &[VarianceSource::DataSplit, VarianceSource::HyperOpt]
    }

    fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.fit(params, &split.train_valid());
        self.auc(&model, split.test())
    }

    fn run_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64) {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.fit(params, split.train());
        (
            self.auc(&model, split.valid()),
            self.auc(&model, split.test()),
        )
    }

    fn run_valid(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let split = self.split(seeds.seed_of(VarianceSource::DataSplit));
        let model = self.fit(params, split.train());
        self.auc(&model, split.valid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_workload_beats_chance_and_reproduces() {
        let w = LinearWorkload::new(Scale::Test);
        let seeds = SeedAssignment::all_fixed(3);
        let params = w.default_params().to_vec();
        let a = w.run_with_params(&params, &seeds);
        assert!(a > 0.55 && a <= 1.0, "accuracy {a}");
        assert_eq!(a, w.run_with_params(&params, &seeds), "not reproducible");
        let (valid, test) = w.run_valid_test(&params, &seeds);
        assert!(valid > 0.5 && test > 0.5);
    }

    #[test]
    fn linear_active_sources_perturb_and_inactive_do_not() {
        let w = LinearWorkload::new(Scale::Test);
        let base = SeedAssignment::all_fixed(7);
        let params = w.default_params().to_vec();
        let reference = w.run_with_params(&params, &base);
        for src in [VarianceSource::DataSplit, VarianceSource::WeightsInit] {
            let changed = (0..5)
                .any(|v| w.run_with_params(&params, &base.with_varied(src, 100 + v)) != reference);
            assert!(changed, "active source {src} never changed the outcome");
        }
        for src in [
            VarianceSource::Dropout,
            VarianceSource::DataAugment,
            VarianceSource::NumericalNoise,
        ] {
            for v in 0..3 {
                assert_eq!(
                    w.run_with_params(&params, &base.with_varied(src, 200 + v)),
                    reference,
                    "inactive source {src} changed the outcome"
                );
            }
        }
    }

    #[test]
    fn synthetic_workload_is_splitonly_stochastic() {
        let w = SyntheticWorkload::new(Scale::Test);
        let base = SeedAssignment::all_fixed(5);
        let params = w.default_params().to_vec();
        let reference = w.run_with_params(&params, &base);
        assert!(reference > 0.6 && reference <= 1.0, "AUC {reference}");
        // The split moves the measure...
        let moved = (0..5).any(|v| {
            w.run_with_params(
                &params,
                &base.with_varied(VarianceSource::DataSplit, 50 + v),
            ) != reference
        });
        assert!(moved, "data split must perturb the closed-form fit");
        // ...and nothing else does.
        for src in [
            VarianceSource::WeightsInit,
            VarianceSource::DataOrder,
            VarianceSource::Dropout,
            VarianceSource::DataAugment,
            VarianceSource::NumericalNoise,
        ] {
            assert_eq!(
                w.run_with_params(&params, &base.with_varied(src, 900)),
                reference,
                "source {src} must be inert for a closed-form fit"
            );
        }
    }

    #[test]
    fn workloads_tune_end_to_end() {
        for w in [
            &LinearWorkload::new(Scale::Test) as &dyn Workload,
            &SyntheticWorkload::new(Scale::Test),
        ] {
            let seeds = SeedAssignment::all_fixed(9);
            let result = crate::hopt::run_pipeline(w, &seeds, crate::HpoAlgorithm::RandomSearch, 3);
            assert!(
                result.test_metric > 0.5 && result.test_metric <= 1.0,
                "{}: {}",
                w.name(),
                result.test_metric
            );
            assert_eq!(result.best_params.len(), w.search_space().len());
            assert_eq!(result.fits, 4);
        }
    }
}
