//! An executable model of the complete ML benchmarking process.
//!
//! This crate turns Section 2.1 of *Accounting for Variance in Machine
//! Learning Benchmarks* into running code:
//!
//! * [`VarianceSource`] enumerates the paper's ξ = ξ_O ∪ ξ_H sources
//!   (data split, data order, augmentation, weight init, dropout, numerical
//!   noise, hyperparameter optimization), and [`SeedAssignment`] gives each
//!   one an independent seed that can be held fixed or randomized — the
//!   paper's §2.2 experimental design;
//! * [`CaseStudy`] packages a complete learning pipeline — data pool,
//!   out-of-bootstrap splitting, model architecture, training procedure
//!   `Opt(S_t, λ; ξ_O)`, search space, and metric — for each of the five
//!   paper tasks (see `DESIGN.md` for the substitution table);
//! * [`Workload`] is the object-safe abstraction every estimator works
//!   through: any pipeline exposing a name, metric, search space, active
//!   sources and the two measurement entry points plugs into the whole
//!   stack ([`CaseStudy`] is one implementation;
//!   [`workloads::LinearWorkload`] and [`workloads::SyntheticWorkload`]
//!   prove the trait over non-MLP model families);
//! * [`HpoAlgorithm`] + [`hopt`] implement `HOpt(S_tv; ξ_O, ξ_H)`
//!   (Eq. 2) with random search, noisy grid search, or Bayesian
//!   optimization, generically over any workload;
//! * [`run_pipeline`] is the complete pipeline `P(S_tv)` of Eq. 3: tune,
//!   retrain on train+valid, measure on the held-out test set;
//! * [`cache::MeasureCache`] memoizes case-study score matrices
//!   content-addressed by (case study, scale, randomization set, budget,
//!   seed tree), so the figure artifacts share measurements instead of
//!   recomputing them (optionally persisted via `VARBENCH_CACHE_DIR`);
//! * [`lease`] implements crash-safe work leases *beside* those records
//!   (atomic create-claim, generation stamps, driver reclaim) — the
//!   coordination substrate of the `varbench worker` fleet — and
//!   [`faultpoint`] provides the deterministic fault-injection points
//!   its crash tests are built on (no-ops in release builds unless the
//!   `chaos` feature is enabled).
//!
//! # Example
//!
//! ```
//! use varbench_pipeline::{CaseStudy, Scale, SeedAssignment, VarianceSource};
//!
//! let cs = CaseStudy::glue_rte_bert(Scale::Test);
//! let seeds = SeedAssignment::all_fixed(1);
//! // Train with default hyperparameters and measure test accuracy.
//! let perf = cs.run_with_params(&cs.default_params().to_vec(), &seeds);
//! assert!(perf > 0.4 && perf <= 1.0);
//!
//! // Vary ONLY the weight-initialization seed: performance fluctuates.
//! let varied = seeds.with_varied(VarianceSource::WeightsInit, 999);
//! let perf2 = cs.run_with_params(&cs.default_params().to_vec(), &varied);
//! assert_ne!(perf, perf2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod case_study;
pub mod faultpoint;
mod hopt;
pub mod lease;
pub mod measure;
mod variance;
pub mod workload;
pub mod workloads;

pub use cache::{gc_dir, CacheStats, GcReport, MeasureCache, MeasureKey, MeasureKind};
pub use case_study::{CaseStudy, Scale, SplitSpec};
pub use hopt::{hopt, run_pipeline, HpoAlgorithm, PipelineResult};
pub use measure::{MetricKind, ParMap, SerialMap};
pub use variance::{SeedAssignment, VarianceSource};
pub use workload::Workload;
pub use workloads::{LinearWorkload, SyntheticWorkload};
