//! Hyperparameter optimization of a workload — `HOpt(S_tv; ξ_O, ξ_H)`
//! (paper Eq. 2) — and the complete pipeline `P(S_tv)` (Eq. 3), generic
//! over any [`Workload`].

use crate::case_study::CaseStudy;
use crate::variance::{SeedAssignment, VarianceSource};
use crate::workload::Workload;
use varbench_hpo::{
    minimize, BayesOpt, BayesOptConfig, GridSearch, History, NoisyGridSearch, Optimizer,
    RandomSearch, SearchSpace,
};

/// The hyperparameter-optimization algorithms studied by the paper
/// (Section 2.2: random search, grid search, Bayesian optimization, plus
/// the noisy grid of Appendix E.2 that models grid-design arbitrariness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HpoAlgorithm {
    /// Independent sampling from the search space.
    RandomSearch,
    /// Deterministic grid (no ξ_H variance beyond visit order).
    GridSearch,
    /// Grid with ±Δ/2 perturbed bounds — the paper's variance model for
    /// grid design choices.
    NoisyGridSearch,
    /// Gaussian-process Bayesian optimization with Expected Improvement.
    BayesOpt,
}

impl HpoAlgorithm {
    /// The three stochastic algorithms whose ξ_H variance Fig. 1 reports.
    pub const STUDIED: [HpoAlgorithm; 3] = [
        HpoAlgorithm::NoisyGridSearch,
        HpoAlgorithm::RandomSearch,
        HpoAlgorithm::BayesOpt,
    ];

    /// Display name matching the paper's Fig. 1 rows.
    pub fn display_name(&self) -> &'static str {
        match self {
            HpoAlgorithm::RandomSearch => "Random Search",
            HpoAlgorithm::GridSearch => "Grid Search",
            HpoAlgorithm::NoisyGridSearch => "Noisy Grid Search",
            HpoAlgorithm::BayesOpt => "Bayes Opt",
        }
    }

    fn build(&self, space: &SearchSpace, budget: usize, seed: u64) -> Box<dyn Optimizer> {
        let space = space.clone();
        match self {
            HpoAlgorithm::RandomSearch => Box::new(RandomSearch::new(space, seed)),
            HpoAlgorithm::GridSearch => {
                let points = grid_points_per_dim(space.len(), budget);
                Box::new(GridSearch::new(space, points, seed))
            }
            HpoAlgorithm::NoisyGridSearch => {
                let points = grid_points_per_dim(space.len(), budget);
                Box::new(NoisyGridSearch::new(space, points, seed))
            }
            HpoAlgorithm::BayesOpt => {
                Box::new(BayesOpt::new(space, BayesOptConfig::default(), seed))
            }
        }
    }
}

impl std::fmt::Display for HpoAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Points per grid dimension so the full grid roughly matches `budget`.
fn grid_points_per_dim(dims: usize, budget: usize) -> usize {
    let d = dims as f64;
    ((budget as f64).powf(1.0 / d).floor() as usize).max(2)
}

/// Result of running the complete pipeline `P(S_tv)` once.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// The hyperparameters selected by HOpt.
    pub best_params: Vec<f64>,
    /// The full HPO trial history (for Fig. F.2 curves).
    pub history: History,
    /// Test metric of the final model retrained on train+valid.
    pub test_metric: f64,
    /// Number of model fits consumed (HPO trials + final retrain) — the
    /// cost accounting behind the paper's 51× claim.
    pub fits: usize,
}

/// Runs `HOpt(S_tv; ξ_O, ξ_H)` (paper Eq. 2) on any workload: optimizes
/// the validation objective `1 − metric` via [`Workload::run_valid`],
/// holding all ξ_O seeds fixed, with the ξ_H stream driving the
/// optimizer. Returns the best parameters and the trial history.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn hopt(
    workload: &dyn Workload,
    seeds: &SeedAssignment,
    algo: HpoAlgorithm,
    budget: usize,
) -> (Vec<f64>, History) {
    assert!(budget > 0, "HPO budget must be > 0");
    let mut optimizer = algo.build(
        workload.search_space(),
        budget,
        seeds.seed_of(VarianceSource::HyperOpt),
    );
    let history = minimize(optimizer.as_mut(), budget, |params| {
        1.0 - workload.run_valid(params, seeds)
    });
    let best = history.best().expect("non-empty history").params.clone();
    (best, history)
}

/// Runs the complete pipeline `P(S_tv)` (paper Eq. 3 / Algorithm 1 body)
/// on any workload: HOpt, retrain on train+valid with the selected λ̂*,
/// measure on the held-out test set.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn run_pipeline(
    workload: &dyn Workload,
    seeds: &SeedAssignment,
    algo: HpoAlgorithm,
    budget: usize,
) -> PipelineResult {
    let (best_params, history) = hopt(workload, seeds, algo, budget);
    let test_metric = workload.run_with_params(&best_params, seeds);
    PipelineResult {
        best_params,
        history,
        test_metric,
        fits: budget + 1,
    }
}

impl CaseStudy {
    /// [`hopt`] on this case study (convenience inherent form).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn hopt(
        &self,
        seeds: &SeedAssignment,
        algo: HpoAlgorithm,
        budget: usize,
    ) -> (Vec<f64>, History) {
        hopt(self, seeds, algo, budget)
    }

    /// [`run_pipeline`] on this case study (convenience inherent form).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn run_pipeline(
        &self,
        seeds: &SeedAssignment,
        algo: HpoAlgorithm,
        budget: usize,
    ) -> PipelineResult {
        run_pipeline(self, seeds, algo, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::Scale;

    #[test]
    fn hopt_improves_over_worst_trial() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let seeds = SeedAssignment::all_fixed(1);
        let (best, history) = cs.hopt(&seeds, HpoAlgorithm::RandomSearch, 6);
        assert_eq!(best.len(), cs.search_space().len());
        let objectives: Vec<f64> = history.trials().iter().map(|t| t.objective).collect();
        let best_obj = history.best().unwrap().objective;
        assert!(objectives.iter().all(|&o| o >= best_obj));
    }

    #[test]
    fn pipeline_produces_sensible_metric() {
        let cs = CaseStudy::glue_sst2_bert(Scale::Test);
        let seeds = SeedAssignment::all_fixed(2);
        let result = cs.run_pipeline(&seeds, HpoAlgorithm::RandomSearch, 4);
        assert!(result.test_metric > 0.5 && result.test_metric <= 1.0);
        assert_eq!(result.fits, 5);
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn hyperopt_seed_changes_selected_params() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let a_seeds = SeedAssignment::all_fixed(3);
        let b_seeds = a_seeds.with_varied(VarianceSource::HyperOpt, 99);
        let (a, _) = cs.hopt(&a_seeds, HpoAlgorithm::RandomSearch, 5);
        let (b, _) = cs.hopt(&b_seeds, HpoAlgorithm::RandomSearch, 5);
        assert_ne!(a, b, "different ξ_H must explore differently");
    }

    #[test]
    fn hopt_is_deterministic() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let seeds = SeedAssignment::all_fixed(4);
        let (a, ha) = cs.hopt(&seeds, HpoAlgorithm::NoisyGridSearch, 4);
        let (b, hb) = cs.hopt(&seeds, HpoAlgorithm::NoisyGridSearch, 4);
        assert_eq!(a, b);
        assert_eq!(ha, hb);
    }

    #[test]
    fn run_pipeline_matches_hand_inlined_sequence() {
        // The generic pipeline must equal hopt + a retrain-on-train+valid
        // measurement, spelled out by hand (guards the delegation chain
        // against drift).
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let seeds = SeedAssignment::all_fixed(6);
        let result = run_pipeline(&cs, &seeds, HpoAlgorithm::RandomSearch, 3);
        let (best, history) = hopt(&cs, &seeds, HpoAlgorithm::RandomSearch, 3);
        assert_eq!(result.best_params, best);
        assert_eq!(result.history, history);
        assert_eq!(result.test_metric, cs.run_with_params(&best, &seeds));
        assert_eq!(result.fits, 4);
    }

    #[test]
    fn all_algorithms_run() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let seeds = SeedAssignment::all_fixed(5);
        for algo in [
            HpoAlgorithm::RandomSearch,
            HpoAlgorithm::GridSearch,
            HpoAlgorithm::NoisyGridSearch,
            HpoAlgorithm::BayesOpt,
        ] {
            let (best, history) = cs.hopt(&seeds, algo, 6);
            assert_eq!(history.len(), 6, "{algo}");
            assert_eq!(best.len(), 3, "{algo}");
        }
    }

    #[test]
    fn grid_points_scale_with_budget_and_dims() {
        assert_eq!(grid_points_per_dim(4, 16), 2);
        assert_eq!(grid_points_per_dim(4, 81), 3);
        assert_eq!(grid_points_per_dim(2, 25), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(HpoAlgorithm::BayesOpt.to_string(), "Bayes Opt");
        assert_eq!(HpoAlgorithm::STUDIED.len(), 3);
    }
}
