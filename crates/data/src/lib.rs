//! Datasets and resampling schemes for variance-aware benchmarking.
//!
//! The paper's strongest empirical finding is that *data sampling* — which
//! examples end up in the train and test sets — is the largest source of
//! benchmark variance, and that it should be probed with bootstrap/
//! out-of-bootstrap resampling rather than a fixed held-out split
//! (Appendix B). This crate provides:
//!
//! * [`Dataset`] — an in-memory tabular dataset with classification,
//!   dense-mask (segmentation-like), or regression targets;
//! * [`synth`] — seeded synthetic generators standing in for the paper's
//!   CIFAR10 / GLUE / PascalVOC / MHC tasks (see DESIGN.md §1 for the
//!   substitution rationale);
//! * [`split`] — holdout, k-fold cross-validation, and the paper's
//!   out-of-bootstrap scheme (plain and stratified);
//! * [`augment`] — seeded stochastic data augmentation (a ξ_O variance
//!   source).
//!
//! # Example
//!
//! ```
//! use varbench_data::{synth, split};
//! use varbench_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(1);
//! let ds = synth::gaussian_mixture(&synth::GaussianMixtureConfig::default(), &mut rng);
//! let split = split::oob_split(ds.len(), 600, 150, 150, &mut rng);
//! let train = ds.subset(split.train());
//! assert_eq!(train.len(), 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod split;
pub mod synth;

mod dataset;

pub use dataset::{Dataset, Targets};
