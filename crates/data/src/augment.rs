//! Seeded stochastic data augmentation.
//!
//! Data augmentation is one of the ξ_O variance sources the paper measures
//! (Fig. 1, CIFAR10 column): the augmentation RNG changes what the model
//! sees each epoch, which perturbs the final performance. Augmenters here
//! transform *feature vectors* — the tabular analog of the paper's random
//! crops and flips.

use varbench_rng::Rng;

/// A stochastic feature-space augmentation.
///
/// Implementations must be deterministic given the `rng` stream so the
/// augmentation variance source can be held fixed or randomized at will.
pub trait Augment: std::fmt::Debug {
    /// Perturbs the feature vector `x` in place.
    fn augment(&self, x: &mut [f64], rng: &mut Rng);

    /// `true` if this augmentation never changes `x` and never draws from
    /// the RNG, letting hot loops skip the virtual call (and the input
    /// copy it would require) entirely. Default `false`; only override
    /// for genuine no-ops.
    fn is_noop(&self) -> bool {
        false
    }
}

/// The identity augmentation (no-op). Used when a pipeline has no
/// augmentation source (e.g. the BERT analogs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl Augment for Identity {
    fn augment(&self, _x: &mut [f64], _rng: &mut Rng) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// Additive Gaussian jitter: `x ← x + ε`, `ε ∼ N(0, σ²)` per coordinate.
///
/// The tabular analog of random cropping: a small random displacement of
/// the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianJitter {
    /// Noise standard deviation.
    pub sigma: f64,
}

impl GaussianJitter {
    /// Creates a jitter augmentation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be >= 0");
        Self { sigma }
    }
}

impl Augment for GaussianJitter {
    fn augment(&self, x: &mut [f64], rng: &mut Rng) {
        if self.sigma == 0.0 {
            return;
        }
        for xi in x {
            *xi += rng.normal(0.0, self.sigma);
        }
    }
}

/// Random sign flip of the whole feature vector with probability `p`,
/// optionally combined with Gaussian jitter.
///
/// The tabular analog of a random horizontal flip: a global, structured
/// transformation applied with probability 1/2 plus local noise. Only
/// meaningful for tasks whose generating distribution is symmetric under
/// negation (the Gaussian-mixture analog is, up to class relabeling, which
/// is why `flip_scale` defaults below 1: partial reflection keeps the class
/// structure while still perturbing training).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipJitter {
    /// Probability of applying the flip.
    pub p_flip: f64,
    /// Multiplier applied when flipping (e.g. −0.2 for a partial
    /// reflection).
    pub flip_scale: f64,
    /// Additive jitter applied after the flip decision.
    pub sigma: f64,
}

impl FlipJitter {
    /// Creates a flip-and-jitter augmentation.
    ///
    /// # Panics
    ///
    /// Panics if `p_flip` outside `[0, 1]` or `sigma < 0`.
    pub fn new(p_flip: f64, flip_scale: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_flip), "p_flip must be in [0,1]");
        assert!(sigma >= 0.0, "sigma must be >= 0");
        Self {
            p_flip,
            flip_scale,
            sigma,
        }
    }
}

impl Augment for FlipJitter {
    fn augment(&self, x: &mut [f64], rng: &mut Rng) {
        if self.p_flip > 0.0 && rng.bernoulli(self.p_flip) {
            for xi in x.iter_mut() {
                *xi *= self.flip_scale;
            }
        }
        if self.sigma > 0.0 {
            for xi in x.iter_mut() {
                *xi += rng.normal(0.0, self.sigma);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let mut rng = Rng::seed_from_u64(1);
        let mut x = vec![1.0, -2.0, 3.0];
        Identity.augment(&mut x, &mut rng);
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn jitter_perturbs_but_stays_close() {
        let mut rng = Rng::seed_from_u64(2);
        let orig = vec![1.0; 100];
        let mut x = orig.clone();
        GaussianJitter::new(0.1).augment(&mut x, &mut rng);
        assert_ne!(x, orig);
        let max_shift = x
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_shift < 1.0, "5-sigma bound: {max_shift}");
    }

    #[test]
    fn jitter_zero_sigma_is_noop() {
        let mut rng = Rng::seed_from_u64(3);
        let mut x = vec![1.0, 2.0];
        GaussianJitter::new(0.0).augment(&mut x, &mut rng);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn jitter_deterministic_given_seed() {
        let mut a = vec![0.5; 8];
        let mut b = vec![0.5; 8];
        GaussianJitter::new(0.2).augment(&mut a, &mut Rng::seed_from_u64(4));
        GaussianJitter::new(0.2).augment(&mut b, &mut Rng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn flip_applies_at_expected_rate() {
        let aug = FlipJitter::new(0.5, -1.0, 0.0);
        let mut rng = Rng::seed_from_u64(5);
        let mut flips = 0;
        let n = 10_000;
        for _ in 0..n {
            let mut x = vec![1.0];
            aug.augment(&mut x, &mut rng);
            if x[0] < 0.0 {
                flips += 1;
            }
        }
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    fn flip_scale_respected() {
        let aug = FlipJitter::new(1.0, -0.25, 0.0);
        let mut rng = Rng::seed_from_u64(6);
        let mut x = vec![4.0, -8.0];
        aug.augment(&mut x, &mut rng);
        assert_eq!(x, vec![-1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "p_flip must be in [0,1]")]
    fn bad_p_flip_rejected() {
        FlipJitter::new(1.5, 1.0, 0.0);
    }
}
