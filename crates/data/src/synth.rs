//! Seeded synthetic dataset generators.
//!
//! These stand in for the paper's real-world tasks (CIFAR10, GLUE-SST2/RTE,
//! PascalVOC, MHC-I binding), which cannot be re-run here. Each generator
//! produces an i.i.d. sample from a fixed, well-defined distribution `D`, so
//! the paper's model of data-sampling variance (`S ∼ Dⁿ`) holds *exactly* —
//! which is precisely the property the benchmark study needs, and which the
//! real datasets only approximate. Difficulty (Bayes accuracy) is controlled
//! by separation and label-noise parameters so each case-study analog can be
//! calibrated to its paper counterpart's accuracy level.

use crate::dataset::{Dataset, Targets};
use varbench_rng::Rng;

/// Configuration of the Gaussian-mixture classification generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixtureConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Examples per class.
    pub n_per_class: usize,
    /// Distance of each class mean from the origin (class separation).
    pub class_sep: f64,
    /// Within-class standard deviation.
    pub within_std: f64,
    /// Probability of replacing a label with a uniformly random one
    /// (irreducible error, capping achievable accuracy).
    pub label_noise: f64,
}

impl Default for GaussianMixtureConfig {
    fn default() -> Self {
        Self {
            num_classes: 10,
            dim: 24,
            n_per_class: 100,
            class_sep: 3.0,
            within_std: 1.0,
            label_noise: 0.0,
        }
    }
}

/// Generates a Gaussian-mixture classification dataset (the CIFAR10-VGG11
/// analog).
///
/// Class means are random unit directions scaled by `class_sep`; examples
/// are isotropic Gaussians around their class mean. The *same* `rng` that
/// seeds the class geometry seeds the sample, so a fixed seed defines a
/// fixed data universe to bootstrap from.
///
/// # Panics
///
/// Panics if any size parameter is zero or `label_noise` outside `[0, 1]`.
pub fn gaussian_mixture(config: &GaussianMixtureConfig, rng: &mut Rng) -> Dataset {
    assert!(config.num_classes >= 2, "need at least 2 classes");
    assert!(
        config.dim > 0 && config.n_per_class > 0,
        "sizes must be > 0"
    );
    assert!(
        (0.0..=1.0).contains(&config.label_noise),
        "label_noise must be in [0,1]"
    );
    // Class means: random directions on the sphere of radius class_sep.
    let means: Vec<Vec<f64>> = (0..config.num_classes)
        .map(|_| {
            let mut v: Vec<f64> = (0..config.dim).map(|_| rng.standard_normal()).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for x in &mut v {
                *x *= config.class_sep / norm;
            }
            v
        })
        .collect();

    let n = config.num_classes * config.n_per_class;
    let mut features = Vec::with_capacity(n * config.dim);
    let mut labels = Vec::with_capacity(n);
    for (c, mean) in means.iter().enumerate() {
        for _ in 0..config.n_per_class {
            for &m in mean.iter().take(config.dim) {
                features.push(m + rng.normal(0.0, config.within_std));
            }
            let label = if config.label_noise > 0.0 && rng.bernoulli(config.label_noise) {
                rng.range_usize(config.num_classes)
            } else {
                c
            };
            labels.push(label);
        }
    }
    Dataset::new(
        features,
        config.dim,
        Targets::Labels {
            labels,
            num_classes: config.num_classes,
        },
    )
}

/// Configuration of the binary-classification generator with controllable
/// overlap (the GLUE RTE / SST-2 analogs).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryOverlapConfig {
    /// Total number of examples.
    pub n: usize,
    /// Feature dimensionality (informative direction + nuisance dims).
    pub dim: usize,
    /// Separation between the two class means along the informative
    /// direction, in units of the within-class std.
    pub separation: f64,
    /// Probability of flipping a label (irreducible error).
    pub label_noise: f64,
    /// Class imbalance: probability of class 1.
    pub p_positive: f64,
}

impl Default for BinaryOverlapConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            dim: 16,
            separation: 2.0,
            label_noise: 0.0,
            p_positive: 0.5,
        }
    }
}

/// Generates a binary classification dataset with controlled class overlap.
///
/// The Bayes accuracy is approximately
/// `(1 − ρ)·Φ(sep/2) + ρ·(1 − Φ(sep/2))` for label-noise `ρ`, so the
/// case-study analogs can be tuned to their paper accuracies (0.66 for RTE,
/// 0.95 for SST-2).
///
/// # Panics
///
/// Panics if sizes are zero or probabilities outside `[0, 1]`.
pub fn binary_overlap(config: &BinaryOverlapConfig, rng: &mut Rng) -> Dataset {
    assert!(config.n > 0 && config.dim > 0, "sizes must be > 0");
    assert!(
        (0.0..=1.0).contains(&config.label_noise),
        "label_noise in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.p_positive),
        "p_positive in [0,1]"
    );
    let mut features = Vec::with_capacity(config.n * config.dim);
    let mut labels = Vec::with_capacity(config.n);
    for _ in 0..config.n {
        let true_class = usize::from(rng.bernoulli(config.p_positive));
        let shift = if true_class == 1 {
            config.separation / 2.0
        } else {
            -config.separation / 2.0
        };
        // Informative dimension 0; the rest are nuisance.
        features.push(shift + rng.standard_normal());
        for _ in 1..config.dim {
            features.push(rng.standard_normal());
        }
        let label = if config.label_noise > 0.0 && rng.bernoulli(config.label_noise) {
            1 - true_class
        } else {
            true_class
        };
        labels.push(label);
    }
    Dataset::new(
        features,
        config.dim,
        Targets::Labels {
            labels,
            num_classes: 2,
        },
    )
}

/// Configuration of the dense-mask prediction generator (the PascalVOC
/// segmentation analog).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskTaskConfig {
    /// Number of examples.
    pub n: usize,
    /// Observed feature dimensionality.
    pub dim: usize,
    /// Latent dimensionality generating both features and masks.
    pub latent_dim: usize,
    /// Number of mask cells per example (e.g. 64 for an 8×8 "image").
    pub mask_len: usize,
    /// Observation noise on the features.
    pub feature_noise: f64,
}

impl Default for MaskTaskConfig {
    fn default() -> Self {
        Self {
            n: 800,
            dim: 24,
            latent_dim: 6,
            mask_len: 64,
            feature_noise: 0.8,
        }
    }
}

/// Generates a dense-mask prediction dataset.
///
/// A latent vector `z` produces both the observed features (`W z + noise`)
/// and the target mask (`mask_j = 1{v_j · z > 0}`), so masks are predictable
/// from features but not perfectly — mimicking a segmentation task evaluated
/// with IoU.
///
/// # Panics
///
/// Panics if any size is zero.
pub fn mask_task(config: &MaskTaskConfig, rng: &mut Rng) -> Dataset {
    assert!(
        config.n > 0 && config.dim > 0 && config.latent_dim > 0 && config.mask_len > 0,
        "sizes must be > 0"
    );
    // Fixed linear maps defining the task.
    let w: Vec<f64> = (0..config.dim * config.latent_dim)
        .map(|_| rng.standard_normal())
        .collect();
    let v: Vec<f64> = (0..config.mask_len * config.latent_dim)
        .map(|_| rng.standard_normal())
        .collect();
    // Mild bias per mask cell so masks are not always half-full.
    let bias: Vec<f64> = (0..config.mask_len).map(|_| rng.normal(0.0, 0.5)).collect();

    let mut features = Vec::with_capacity(config.n * config.dim);
    let mut masks = Vec::with_capacity(config.n);
    for _ in 0..config.n {
        let z: Vec<f64> = (0..config.latent_dim)
            .map(|_| rng.standard_normal())
            .collect();
        for d in 0..config.dim {
            let mut s = 0.0;
            for (l, zl) in z.iter().enumerate() {
                s += w[d * config.latent_dim + l] * zl;
            }
            features.push(s + rng.normal(0.0, config.feature_noise));
        }
        let mut mask = Vec::with_capacity(config.mask_len);
        for j in 0..config.mask_len {
            let mut s = bias[j];
            for (l, zl) in z.iter().enumerate() {
                s += v[j * config.latent_dim + l] * zl;
            }
            mask.push(if s > 0.0 { 1.0 } else { 0.0 });
        }
        masks.push(mask);
    }
    Dataset::new(
        features,
        config.dim,
        Targets::Masks {
            masks,
            mask_len: config.mask_len,
        },
    )
}

/// Configuration of the binding-affinity regression generator (the MHC-I
/// analog).
#[derive(Debug, Clone, PartialEq)]
pub struct BindingConfig {
    /// Number of examples.
    pub n: usize,
    /// Feature dimensionality (encodes "allele + peptide").
    pub dim: usize,
    /// Observation noise on the affinity.
    pub noise: f64,
    /// Domain-shift strength: 0 reproduces the training distribution;
    /// larger values perturb the ground-truth coefficients, standing in for
    /// the external "HPV" test set of the paper's Table 8.
    pub shift: f64,
}

impl Default for BindingConfig {
    fn default() -> Self {
        Self {
            n: 2000,
            dim: 20,
            noise: 0.1,
            shift: 0.0,
        }
    }
}

/// Generates a binding-affinity regression dataset.
///
/// The target is a squashed nonlinear function of the features —
/// `σ(w·x + c·x₁x₂ + s·sin(2 x₃))` plus noise — clipped to `[0, 1]` like a
/// normalized binding-affinity score. The ground-truth coefficients are
/// derived *deterministically from fixed constants* (not from `rng`), so
/// independently generated train/validation/test sets share the same task;
/// `shift` perturbs them to model the external-dataset evaluation of
/// Table 8.
///
/// # Panics
///
/// Panics if sizes are zero, `dim < 4`, or `noise < 0`.
pub fn binding_regression(config: &BindingConfig, rng: &mut Rng) -> Dataset {
    assert!(config.n > 0, "n must be > 0");
    assert!(config.dim >= 4, "binding task needs dim >= 4");
    assert!(config.noise >= 0.0, "noise must be >= 0");
    // Deterministic pseudo-random coefficients (fixed task identity).
    let w: Vec<f64> = (0..config.dim)
        .map(|d| {
            ((d as f64 * 2.399_963_229_728_653).sin()) * 0.8
                + config.shift * ((d as f64 * 1.1).cos()) * 0.3
        })
        .collect();
    let inter = 0.9 + config.shift * 0.4;
    let sin_coef = 0.7 - config.shift * 0.2;

    let mut features = Vec::with_capacity(config.n * config.dim);
    let mut values = Vec::with_capacity(config.n);
    for _ in 0..config.n {
        let x: Vec<f64> = (0..config.dim).map(|_| rng.standard_normal()).collect();
        let mut lin = 0.0;
        for (wi, xi) in w.iter().zip(&x) {
            lin += wi * xi / (config.dim as f64).sqrt();
        }
        let raw = lin + inter * x[0] * x[1] / 2.0 + sin_coef * (2.0 * x[2]).sin();
        let affinity = 1.0 / (1.0 + (-raw).exp()) + rng.normal(0.0, config.noise);
        values.push(affinity.clamp(0.0, 1.0));
        features.extend_from_slice(&x);
    }
    Dataset::new(features, config.dim, Targets::Values(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_mixture_shape_and_balance() {
        let mut rng = Rng::seed_from_u64(1);
        let cfg = GaussianMixtureConfig {
            num_classes: 4,
            n_per_class: 25,
            ..Default::default()
        };
        let ds = gaussian_mixture(&cfg, &mut rng);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.num_classes(), 4);
        let mut counts = [0usize; 4];
        for &l in ds.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn gaussian_mixture_is_separable_when_far() {
        // With huge separation a nearest-mean rule should be near perfect:
        // verify classes are distinguishable by the feature means.
        let mut rng = Rng::seed_from_u64(2);
        let cfg = GaussianMixtureConfig {
            num_classes: 3,
            dim: 8,
            n_per_class: 50,
            class_sep: 20.0,
            within_std: 1.0,
            label_noise: 0.0,
        };
        let ds = gaussian_mixture(&cfg, &mut rng);
        // Class centroids must be far apart relative to within-class spread.
        let centroid = |c: usize| -> Vec<f64> {
            let mut acc = vec![0.0; ds.dim()];
            let mut count = 0.0;
            for i in 0..ds.len() {
                if ds.label(i) == c {
                    for (a, x) in acc.iter_mut().zip(ds.x(i)) {
                        *a += x;
                    }
                    count += 1.0;
                }
            }
            acc.iter().map(|a| a / count).collect()
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        let dist: f64 = c0
            .iter()
            .zip(&c1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 10.0, "centroids too close: {dist}");
    }

    #[test]
    fn label_noise_caps_purity() {
        let mut rng = Rng::seed_from_u64(3);
        let cfg = GaussianMixtureConfig {
            num_classes: 2,
            dim: 4,
            n_per_class: 2000,
            class_sep: 50.0,
            within_std: 0.1,
            label_noise: 0.3,
        };
        let ds = gaussian_mixture(&cfg, &mut rng);
        // ~30% of labels randomized (half of which land back on the true
        // class) → ~15% disagreement with the generating class for class 0
        // block (first 2000 examples).
        let wrong = (0..2000).filter(|&i| ds.label(i) != 0).count();
        let frac = wrong as f64 / 2000.0;
        assert!((frac - 0.15).abs() < 0.03, "noise fraction {frac}");
    }

    #[test]
    fn binary_overlap_balance_and_dims() {
        let mut rng = Rng::seed_from_u64(4);
        let ds = binary_overlap(&BinaryOverlapConfig::default(), &mut rng);
        assert_eq!(ds.len(), 1000);
        assert_eq!(ds.dim(), 16);
        let pos = ds.labels().iter().filter(|&&l| l == 1).count();
        let frac = pos as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.06, "class balance {frac}");
    }

    #[test]
    fn binary_overlap_separation_moves_means() {
        let mut rng = Rng::seed_from_u64(5);
        let cfg = BinaryOverlapConfig {
            separation: 4.0,
            n: 4000,
            ..Default::default()
        };
        let ds = binary_overlap(&cfg, &mut rng);
        let mean_of = |class: usize| -> f64 {
            let vals: Vec<f64> = (0..ds.len())
                .filter(|&i| ds.label(i) == class)
                .map(|i| ds.x(i)[0])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let gap = mean_of(1) - mean_of(0);
        assert!((gap - 4.0).abs() < 0.25, "gap {gap}");
    }

    #[test]
    fn mask_task_masks_are_binary_and_predictable() {
        let mut rng = Rng::seed_from_u64(6);
        let ds = mask_task(&MaskTaskConfig::default(), &mut rng);
        assert_eq!(ds.len(), 800);
        for i in 0..10 {
            for &cell in ds.mask(i) {
                assert!(cell == 0.0 || cell == 1.0);
            }
        }
        // Masks vary between examples (non-degenerate task).
        assert_ne!(ds.mask(0), ds.mask(1));
    }

    #[test]
    fn binding_values_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        let ds = binding_regression(&BindingConfig::default(), &mut rng);
        for i in 0..ds.len() {
            let v = ds.value(i);
            assert!((0.0..=1.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn binding_task_shared_across_samples() {
        // Two independently drawn datasets from the same config must be
        // learnable by the same function: their value distributions should
        // match closely (same task), unlike a shifted config.
        let mut r1 = Rng::seed_from_u64(8);
        let mut r2 = Rng::seed_from_u64(9);
        let a = binding_regression(&BindingConfig::default(), &mut r1);
        let b = binding_regression(&BindingConfig::default(), &mut r2);
        let mean = |ds: &Dataset| -> f64 {
            (0..ds.len()).map(|i| ds.value(i)).sum::<f64>() / ds.len() as f64
        };
        assert!((mean(&a) - mean(&b)).abs() < 0.03);
        let mut r3 = Rng::seed_from_u64(10);
        let shifted = binding_regression(
            &BindingConfig {
                shift: 2.0,
                ..Default::default()
            },
            &mut r3,
        );
        // The shifted task is a genuinely different function; its outputs
        // still live in [0,1] but the task coefficients differ.
        assert_eq!(shifted.len(), 2000);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gaussian_mixture(
            &GaussianMixtureConfig::default(),
            &mut Rng::seed_from_u64(42),
        );
        let b = gaussian_mixture(
            &GaussianMixtureConfig::default(),
            &mut Rng::seed_from_u64(42),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need at least 2 classes")]
    fn degenerate_classes_rejected() {
        gaussian_mixture(
            &GaussianMixtureConfig {
                num_classes: 1,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(1),
        );
    }
}
