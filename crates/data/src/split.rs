//! Data splitting: holdout, k-fold cross-validation, and the paper's
//! out-of-bootstrap scheme.
//!
//! The paper (Appendix B) favors bootstrap over cross-validation because it
//! decouples the number of resamples from the train-set size and better
//! simulates independent draws from the true distribution: training sets are
//! sampled *with replacement*, and validation/test sets are drawn from the
//! out-of-bag complement.

use varbench_rng::{bootstrap_indices, oob_complement, stratified_bootstrap_indices, Rng};

/// A three-way split of example indices into train / validation / test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    train: Vec<usize>,
    valid: Vec<usize>,
    test: Vec<usize>,
}

impl Split {
    /// Creates a split from explicit index sets.
    pub fn new(train: Vec<usize>, valid: Vec<usize>, test: Vec<usize>) -> Self {
        Self { train, valid, test }
    }

    /// Training indices (may contain duplicates under bootstrap).
    pub fn train(&self) -> &[usize] {
        &self.train
    }

    /// Validation indices.
    pub fn valid(&self) -> &[usize] {
        &self.valid
    }

    /// Test indices.
    pub fn test(&self) -> &[usize] {
        &self.test
    }

    /// Training + validation indices concatenated — the `S_tv` of the
    /// paper's Eq. 3, used when retraining on the full data after
    /// hyperparameter selection.
    pub fn train_valid(&self) -> Vec<usize> {
        let mut tv = self.train.clone();
        tv.extend_from_slice(&self.valid);
        tv
    }
}

/// Random holdout split without replacement.
///
/// # Panics
///
/// Panics if `n_train + n_valid + n_test > n`.
pub fn holdout_split(
    n: usize,
    n_train: usize,
    n_valid: usize,
    n_test: usize,
    rng: &mut Rng,
) -> Split {
    assert!(
        n_train + n_valid + n_test <= n,
        "holdout sizes exceed population: {} + {} + {} > {n}",
        n_train,
        n_valid,
        n_test
    );
    let perm = rng.permutation(n);
    Split {
        train: perm[..n_train].to_vec(),
        valid: perm[n_train..n_train + n_valid].to_vec(),
        test: perm[n_train + n_valid..n_train + n_valid + n_test].to_vec(),
    }
}

/// K-fold cross-validation folds: returns `k` (train, test) index pairs.
///
/// Provided for the bootstrap-vs-CV ablation (paper Appendix B argues CV
/// "underestimates variance because of correlations induced by the
/// process").
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize, rng: &mut Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(k <= n, "k-fold requires k <= n");
    let perm = rng.permutation(n);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test: Vec<usize> = perm[lo..hi].to_vec();
        let mut train = Vec::with_capacity(n - (hi - lo));
        train.extend_from_slice(&perm[..lo]);
        train.extend_from_slice(&perm[hi..]);
        folds.push((train, test));
    }
    folds
}

/// Out-of-bootstrap split (paper Appendix B).
///
/// Draws `n_train` indices *with replacement* from `0..n`; validation and
/// test sets are disjoint samples (without replacement) from the
/// out-of-bag complement.
///
/// # Panics
///
/// Panics if the out-of-bag complement is smaller than
/// `n_valid + n_test` (for `n_train = n` the complement is ≈ 36.8% of `n`,
/// so keep `n_valid + n_test ≲ n/3`).
pub fn oob_split(n: usize, n_train: usize, n_valid: usize, n_test: usize, rng: &mut Rng) -> Split {
    let train = bootstrap_indices(rng, n, n_train);
    let oob = oob_complement(n, &train);
    assert!(
        oob.len() >= n_valid + n_test,
        "out-of-bag complement too small: {} < {} + {}",
        oob.len(),
        n_valid,
        n_test
    );
    let picks = rng.sample_indices(oob.len(), n_valid + n_test);
    let valid: Vec<usize> = picks[..n_valid].iter().map(|&i| oob[i]).collect();
    let test: Vec<usize> = picks[n_valid..].iter().map(|&i| oob[i]).collect();
    Split { train, valid, test }
}

/// Stratified out-of-bootstrap split (the paper's CIFAR10 protocol,
/// Appendix D.1: per-class bootstrap of the train set, per-class sampling
/// of validation and test sets from the out-of-bag complement).
///
/// # Panics
///
/// Panics if a class's out-of-bag complement cannot supply
/// `per_class_valid + per_class_test` distinct examples.
pub fn stratified_oob_split(
    labels: &[usize],
    num_classes: usize,
    per_class_train: usize,
    per_class_valid: usize,
    per_class_test: usize,
    rng: &mut Rng,
) -> Split {
    let train = stratified_bootstrap_indices(rng, labels, num_classes, per_class_train);
    let oob = oob_complement(labels.len(), &train);
    // Bucket the OOB indices by class.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for &i in &oob {
        buckets[labels[i]].push(i);
    }
    let mut valid = Vec::with_capacity(num_classes * per_class_valid);
    let mut test = Vec::with_capacity(num_classes * per_class_test);
    for (c, bucket) in buckets.iter().enumerate() {
        let need = per_class_valid + per_class_test;
        assert!(
            bucket.len() >= need,
            "class {c} has only {} out-of-bag members, need {need}",
            bucket.len()
        );
        let picks = rng.sample_indices(bucket.len(), need);
        valid.extend(picks[..per_class_valid].iter().map(|&i| bucket[i]));
        test.extend(picks[per_class_valid..].iter().map(|&i| bucket[i]));
    }
    Split { train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holdout_disjoint_and_sized() {
        let mut rng = Rng::seed_from_u64(1);
        let s = holdout_split(100, 60, 20, 20, &mut rng);
        assert_eq!(s.train().len(), 60);
        assert_eq!(s.valid().len(), 20);
        assert_eq!(s.test().len(), 20);
        let mut all: Vec<usize> = s
            .train()
            .iter()
            .chain(s.valid())
            .chain(s.test())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "holdout split must be disjoint");
    }

    #[test]
    fn holdout_can_leave_remainder() {
        let mut rng = Rng::seed_from_u64(2);
        let s = holdout_split(100, 50, 10, 10, &mut rng);
        assert_eq!(s.train().len() + s.valid().len() + s.test().len(), 70);
    }

    #[test]
    fn kfold_partitions() {
        let mut rng = Rng::seed_from_u64(3);
        let folds = kfold(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut covered = [false; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                assert!(!covered[i], "index {i} in two test folds");
                covered[i] = true;
            }
            for &i in train {
                assert!(!test.contains(&i));
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "every index in exactly one test fold"
        );
    }

    #[test]
    fn oob_split_valid_test_disjoint_from_train() {
        let mut rng = Rng::seed_from_u64(4);
        let s = oob_split(1000, 1000, 100, 100, &mut rng);
        assert_eq!(s.train().len(), 1000);
        assert_eq!(s.valid().len(), 100);
        assert_eq!(s.test().len(), 100);
        // Sorted-vec membership instead of a hash set (clippy.toml / L001).
        let mut in_bag = s.train().to_vec();
        in_bag.sort_unstable();
        for &i in s.valid().iter().chain(s.test()) {
            assert!(
                in_bag.binary_search(&i).is_err(),
                "eval index {i} leaked into train"
            );
        }
        // valid and test are themselves disjoint.
        let mut v = s.valid().to_vec();
        v.sort_unstable();
        assert!(s.test().iter().all(|i| v.binary_search(i).is_err()));
    }

    #[test]
    fn oob_split_train_has_duplicates() {
        let mut rng = Rng::seed_from_u64(5);
        let s = oob_split(500, 500, 50, 50, &mut rng);
        let mut t = s.train().to_vec();
        t.sort_unstable();
        t.dedup();
        assert!(t.len() < 500, "bootstrap train should repeat examples");
    }

    #[test]
    fn oob_splits_differ_across_seeds() {
        let a = oob_split(300, 300, 30, 30, &mut Rng::seed_from_u64(6));
        let b = oob_split(300, 300, 30, 30, &mut Rng::seed_from_u64(7));
        assert_ne!(a.train(), b.train());
        assert_ne!(a.test(), b.test());
    }

    #[test]
    fn oob_split_deterministic() {
        let a = oob_split(300, 300, 30, 30, &mut Rng::seed_from_u64(8));
        let b = oob_split(300, 300, 30, 30, &mut Rng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn stratified_oob_preserves_balance() {
        let labels: Vec<usize> = (0..600).map(|i| i % 3).collect();
        let mut rng = Rng::seed_from_u64(9);
        let s = stratified_oob_split(&labels, 3, 120, 20, 20, &mut rng);
        assert_eq!(s.train().len(), 360);
        let count = |idx: &[usize], c: usize| idx.iter().filter(|&&i| labels[i] == c).count();
        for c in 0..3 {
            assert_eq!(count(s.train(), c), 120);
            assert_eq!(count(s.valid(), c), 20);
            assert_eq!(count(s.test(), c), 20);
        }
        let mut in_bag = s.train().to_vec();
        in_bag.sort_unstable();
        for &i in s.valid().iter().chain(s.test()) {
            assert!(in_bag.binary_search(&i).is_err());
        }
    }

    #[test]
    fn train_valid_concatenates() {
        let s = Split::new(vec![0, 1], vec![2], vec![3]);
        assert_eq!(s.train_valid(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "holdout sizes exceed population")]
    fn oversized_holdout_panics() {
        holdout_split(10, 8, 2, 2, &mut Rng::seed_from_u64(10));
    }
}
