//! In-memory datasets.

/// Targets of a [`Dataset`]: classification labels, dense binary masks, or
/// regression values.
#[derive(Debug, Clone, PartialEq)]
pub enum Targets {
    /// Class labels in `0..num_classes`.
    Labels {
        /// Per-example class index.
        labels: Vec<usize>,
        /// Number of classes.
        num_classes: usize,
    },
    /// Dense per-example binary masks (the segmentation-like task); each
    /// mask is a flat vector of 0.0/1.0 of length `mask_len`.
    Masks {
        /// Per-example flattened masks, each of length `mask_len`.
        masks: Vec<Vec<f64>>,
        /// Number of mask cells per example.
        mask_len: usize,
    },
    /// Continuous regression targets (e.g. binding affinities in `[0, 1]`).
    Values(Vec<f64>),
}

impl Targets {
    /// Number of examples covered by the targets.
    pub fn len(&self) -> usize {
        match self {
            Targets::Labels { labels, .. } => labels.len(),
            Targets::Masks { masks, .. } => masks.len(),
            Targets::Values(v) => v.len(),
        }
    }

    /// Whether there are no targets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn subset(&self, indices: &[usize]) -> Targets {
        match self {
            Targets::Labels {
                labels,
                num_classes,
            } => Targets::Labels {
                labels: indices.iter().map(|&i| labels[i]).collect(),
                num_classes: *num_classes,
            },
            Targets::Masks { masks, mask_len } => Targets::Masks {
                masks: indices.iter().map(|&i| masks[i].clone()).collect(),
                mask_len: *mask_len,
            },
            Targets::Values(v) => Targets::Values(indices.iter().map(|&i| v[i]).collect()),
        }
    }
}

/// A dense tabular dataset: `n` examples of `dim` features plus targets.
///
/// Features are stored flat (row-major) for cache-friendly training loops.
///
/// # Example
///
/// ```
/// use varbench_data::{Dataset, Targets};
/// let ds = Dataset::new(
///     vec![0.0, 1.0, 2.0, 3.0],
///     2,
///     Targets::Labels { labels: vec![0, 1], num_classes: 2 },
/// );
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.x(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f64>,
    dim: usize,
    targets: Targets,
}

impl Dataset {
    /// Creates a dataset from a flat row-major feature buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `dim` or the number
    /// of rows disagrees with the number of targets.
    pub fn new(features: Vec<f64>, dim: usize, targets: Targets) -> Self {
        assert!(dim > 0, "dim must be > 0");
        assert_eq!(
            features.len() % dim,
            0,
            "feature buffer not a multiple of dim"
        );
        let n = features.len() / dim;
        assert_eq!(
            n,
            targets.len(),
            "feature rows ({n}) != targets ({})",
            targets.len()
        );
        Self {
            features,
            dim,
            targets,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the feature vector of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn x(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "example {i} out of range");
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrows the targets.
    pub fn targets(&self) -> &Targets {
        &self.targets
    }

    /// Class label of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if the targets are not labels or `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        match &self.targets {
            Targets::Labels { labels, .. } => labels[i],
            _ => panic!("dataset targets are not class labels"),
        }
    }

    /// All class labels.
    ///
    /// # Panics
    ///
    /// Panics if the targets are not labels.
    pub fn labels(&self) -> &[usize] {
        match &self.targets {
            Targets::Labels { labels, .. } => labels,
            _ => panic!("dataset targets are not class labels"),
        }
    }

    /// Number of classes.
    ///
    /// # Panics
    ///
    /// Panics if the targets are not labels.
    pub fn num_classes(&self) -> usize {
        match &self.targets {
            Targets::Labels { num_classes, .. } => *num_classes,
            _ => panic!("dataset targets are not class labels"),
        }
    }

    /// Regression value of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if the targets are not values or `i` is out of range.
    pub fn value(&self, i: usize) -> f64 {
        match &self.targets {
            Targets::Values(v) => v[i],
            _ => panic!("dataset targets are not regression values"),
        }
    }

    /// Mask of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if the targets are not masks or `i` is out of range.
    pub fn mask(&self, i: usize) -> &[f64] {
        match &self.targets {
            Targets::Masks { masks, .. } => &masks[i],
            _ => panic!("dataset targets are not masks"),
        }
    }

    /// Builds a new dataset from the given example indices (duplicates
    /// allowed — this is how bootstrap replicates are materialized).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            features.extend_from_slice(self.x(i));
        }
        Dataset {
            features,
            dim: self.dim,
            targets: self.targets.subset(indices),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1],
            2,
            Targets::Labels {
                labels: vec![0, 1, 0],
                num_classes: 2,
            },
        )
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.x(2), &[2.0, 2.1]);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.labels(), &[0, 1, 0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn subset_with_duplicates() {
        let ds = toy();
        let sub = ds.subset(&[2, 2, 0]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.x(0), &[2.0, 2.1]);
        assert_eq!(sub.x(1), &[2.0, 2.1]);
        assert_eq!(sub.label(2), 0);
    }

    #[test]
    fn regression_targets() {
        let ds = Dataset::new(vec![1.0, 2.0], 1, Targets::Values(vec![0.3, 0.7]));
        assert_eq!(ds.value(1), 0.7);
    }

    #[test]
    fn mask_targets() {
        let ds = Dataset::new(
            vec![1.0, 2.0],
            1,
            Targets::Masks {
                masks: vec![vec![0.0, 1.0], vec![1.0, 1.0]],
                mask_len: 2,
            },
        );
        assert_eq!(ds.mask(0), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_targets_panic() {
        Dataset::new(vec![1.0, 2.0], 1, Targets::Values(vec![0.3]));
    }

    #[test]
    #[should_panic(expected = "not regression values")]
    fn wrong_target_kind_panics() {
        toy().value(0);
    }
}
