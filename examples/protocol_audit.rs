//! Protocol audit: lint an experimental design against the paper's
//! recommendations before burning compute on it.
//!
//! Run with: `cargo run --release --example protocol_audit`

use varbench::core::checklist::{audit, Criterion, Protocol};

fn main() {
    println!("== auditing a typical deep-learning paper protocol ==\n");
    let typical = Protocol {
        runs_per_algorithm: 5,
        randomizes_splits: false, // fixed benchmark split
        randomizes_init: true,    // "5 seeds"
        randomizes_other_sources: false,
        tunes_each_algorithm: false, // hyperparameters from the baseline paper
        paired: false,
        criterion: Criterion::AverageDifference,
    };
    for finding in audit(&typical) {
        println!("{finding}");
    }

    println!("\n== auditing the paper-recommended protocol ==\n");
    let recommended = Protocol {
        runs_per_algorithm: 29,
        randomizes_splits: true,
        randomizes_init: true,
        randomizes_other_sources: true,
        tunes_each_algorithm: true,
        paired: true,
        criterion: Criterion::ProbabilityOfOutperforming,
    };
    let findings = audit(&recommended);
    if findings.is_empty() {
        println!("clean: protocol follows every recommendation of the paper");
    } else {
        for finding in findings {
            println!("{finding}");
        }
    }
}
