//! Bring your own workload: implement the `Workload` trait for a custom
//! pipeline — here a shrunken-nearest-centroid classifier whose only
//! hyperparameter is the shrinkage factor — and the entire measurement
//! stack (estimators, cache, `Study` builder) applies to it unchanged.
//! The trait implementation below is under 60 lines.
//!
//! Run with: `cargo run --release --example custom_workload`

use varbench::hpo::{Dim, SearchSpace};
use varbench::pipeline::{SeedAssignment, VarianceSource, Workload};
use varbench::rng::Rng;
use varbench::{RunContext, Study};

/// Two asymmetric Gaussian point clouds classified by their nearest
/// (shrunken) class centroid. The training sample is re-drawn per split
/// seed, so `DataSplit` is the single ξ_O source.
struct CentroidWorkload {
    space: SearchSpace,
    defaults: Vec<f64>,
}

/// Class center of class `c` (asymmetric on purpose: shrinking the
/// centroids toward the origin moves the decision boundary, so the
/// hyperparameter genuinely matters).
fn center(class: usize) -> f64 {
    if class == 0 {
        -0.6
    } else {
        1.4
    }
}

fn draw(rng: &mut Rng, class: usize) -> (f64, f64) {
    let c = center(class);
    (c + rng.normal(0.0, 1.2), c + rng.normal(0.0, 1.2))
}

impl CentroidWorkload {
    fn new() -> Self {
        let space = SearchSpace::new(vec![("shrinkage".into(), Dim::uniform(0.0, 0.9))]);
        CentroidWorkload {
            space,
            defaults: vec![0.1],
        }
    }

    /// Trains ONE model: class centroids of a fresh training sample,
    /// shrunk toward the origin.
    fn fit(&self, shrinkage: f64, split_seed: u64) -> [(f64, f64); 2] {
        let mut rng = Rng::seed_from_u64(split_seed);
        let n = 120;
        let mut centroids = [(0.0f64, 0.0f64); 2];
        for i in 0..n {
            let class = i % 2;
            let (x, y) = draw(&mut rng, class);
            centroids[class].0 += x * 2.0 / n as f64;
            centroids[class].1 += y * 2.0 / n as f64;
        }
        for c in &mut centroids {
            *c = (c.0 * (1.0 - shrinkage), c.1 * (1.0 - shrinkage));
        }
        centroids
    }

    /// Scores the SAME fitted model on a held-out sample (`stream`
    /// separates the validation draw from the test draw).
    fn evaluate(&self, centroids: &[(f64, f64); 2], split_seed: u64, stream: u64) -> f64 {
        let mut rng = Rng::seed_from_u64(split_seed.rotate_left(17) ^ (0xE7A1 + stream));
        let n = 120;
        let hits = (0..n)
            .filter(|&i| {
                let truth = i % 2;
                let (x, y) = draw(&mut rng, truth);
                let d = |cc: (f64, f64)| (x - cc.0).powi(2) + (y - cc.1).powi(2);
                usize::from(d(centroids[1]) < d(centroids[0])) == truth
            })
            .count();
        hits as f64 / n as f64
    }
}

impl Workload for CentroidWorkload {
    fn name(&self) -> &str {
        "nearest-centroid"
    }
    fn metric_name(&self) -> &'static str {
        "accuracy"
    }
    fn search_space(&self) -> &SearchSpace {
        &self.space
    }
    fn default_params(&self) -> &[f64] {
        &self.defaults
    }
    fn active_sources(&self) -> &[VarianceSource] {
        &[VarianceSource::DataSplit, VarianceSource::HyperOpt]
    }
    fn run_with_params(&self, params: &[f64], seeds: &SeedAssignment) -> f64 {
        let shrinkage = self.space.dims()[0].1.clamp(params[0]);
        let split = seeds.seed_of(VarianceSource::DataSplit);
        self.evaluate(&self.fit(shrinkage, split), split, 2)
    }
    fn run_valid_test(&self, params: &[f64], seeds: &SeedAssignment) -> (f64, f64) {
        // One trained model, two held-out evaluations — the trait's
        // contract (a validation/test-correlation study relies on it).
        let shrinkage = self.space.dims()[0].1.clamp(params[0]);
        let split = seeds.seed_of(VarianceSource::DataSplit);
        let model = self.fit(shrinkage, split);
        (
            self.evaluate(&model, split, 1),
            self.evaluate(&model, split, 2),
        )
    }
}

fn main() {
    let workload = CentroidWorkload::new();
    let report = Study::new(&workload)
        .seeds(12)
        .budget(5) // adds the xi_H row: 5-trial random searches
        .run(&RunContext::serial());
    print!("{}", report.render_text());
    println!(
        "\nThe same Study, estimators, cache and CLI machinery that measures\n\
         the paper's five case studies just measured this custom workload."
    );
}
