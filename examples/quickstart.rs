//! Quickstart: compare two learning algorithms the way the paper
//! recommends.
//!
//! We pit two hyperparameter configurations of the same pipeline against
//! each other on the Glue-RTE analog: `A` uses a well-chosen initialization
//! scale, `B` a deliberately poor one. The comparison follows the paper's
//! recommendations end to end:
//!
//! 1. randomize **every** source of variation between runs,
//! 2. use multiple out-of-bootstrap data splits (built into the case
//!    study),
//! 3. decide with the probability of outperforming `P(A > B)` and its
//!    percentile-bootstrap confidence interval, at γ = 0.75 with the
//!    Noether-planned sample size (29 runs per algorithm).
//!
//! Run with: `cargo run --release --example quickstart`

use varbench::core::compare::compare_paired;
use varbench::core::sample_size;
use varbench::pipeline::{CaseStudy, Scale, SeedAssignment};
use varbench::rng::Rng;

fn main() {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    println!("case study: {} ({})", cs.name(), cs.paper_task());

    // Algorithm A: default hyperparameters (init std 0.2).
    let a_params = cs.default_params().to_vec();
    // Algorithm B: harmful init std (bottom of the Table 3 analog range).
    let mut b_params = a_params.clone();
    b_params[2] = 0.01;

    let k = sample_size::recommended();
    println!("Noether sample size at gamma=0.75, alpha=beta=0.05: {k} runs\n");

    let mut a = Vec::with_capacity(k);
    let mut b = Vec::with_capacity(k);
    for i in 0..k {
        // Pairing: the SAME seed assignment for A and B on each repetition
        // marginalizes out shared noise (paper Appendix C.2).
        let seeds = SeedAssignment::all_random(2021, i as u64);
        a.push(cs.run_with_params(&a_params, &seeds));
        b.push(cs.run_with_params(&b_params, &seeds));
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!("mean accuracy A = {:.4}, B = {:.4}", mean(&a), mean(&b));

    let mut rng = Rng::seed_from_u64(7);
    let verdict = compare_paired(&a, &b, 0.75, 0.05, 2000, &mut rng);
    println!("{verdict}");
    if verdict.is_improvement() {
        println!("=> adopt algorithm A");
    } else {
        println!("=> evidence insufficient; do not claim an improvement");
    }
}
