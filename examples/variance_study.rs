//! Variance study: decompose the benchmark variance of one pipeline into
//! its sources, as in the paper's Fig. 1 protocol.
//!
//! For each source of variation (bootstrap data split, weight init, data
//! order, dropout, ...) we hold everything else fixed, randomize that one
//! source, and measure the standard deviation of the test metric. The
//! punchline the paper established: data sampling dominates, and weight
//! initialization — the one source most papers randomize — is a fraction
//! of it.
//!
//! Run with: `cargo run --release --example variance_study`

use varbench::core::ctx::RunContext;
use varbench::core::estimator::source_variance_study;
use varbench::core::report::{bar, num, Table};
use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale};
use varbench::stats::describe::std_dev;

fn main() {
    let ctx = RunContext::serial();
    let cs = CaseStudy::glue_sst2_bert(Scale::Test);
    let n_seeds = 12;
    println!(
        "variance decomposition of {} ({} seeds per source)\n",
        cs.name(),
        n_seeds
    );

    let mut rows = Vec::new();
    for &src in cs.active_sources() {
        if src.is_hyperopt() {
            continue;
        }
        let measures =
            source_variance_study(&cs, src, n_seeds, HpoAlgorithm::RandomSearch, 1, 99, &ctx);
        rows.push((src.display_name().to_string(), std_dev(&measures)));
    }
    // Hyperparameter-optimization variance: independent tuning runs.
    let hopt = source_variance_study(
        &cs,
        varbench::pipeline::VarianceSource::HyperOpt,
        4,
        HpoAlgorithm::RandomSearch,
        5,
        99,
        &ctx,
    );
    rows.push(("HyperOpt (random search)".into(), std_dev(&hopt)));

    let reference = rows
        .iter()
        .find(|(l, _)| l == "Data (bootstrap)")
        .map(|(_, s)| *s)
        .unwrap_or(1.0);
    let mut t = Table::new(vec!["source".into(), "std".into(), "".into()]);
    for (label, sd) in &rows {
        t.add_row(vec![
            label.clone(),
            num(*sd, 5),
            bar(*sd, reference * 1.5, 30),
        ]);
    }
    println!("{t}");
    println!("reference unit: bootstrap std = {}", num(reference, 5));
}
