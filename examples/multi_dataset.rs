//! Multiple-dataset comparison (paper Section 6).
//!
//! Accumulates evidence that one configuration beats another across
//! several tasks, following the paper's guidance: with only a handful of
//! datasets, Demšar's rank test is underpowered, so use the Dror et al.
//! all-datasets rule — per-dataset `P(A > B)` tests at a
//! Bonferroni-corrected level, accepting only if *every* dataset shows a
//! significant, meaningful improvement.
//!
//! Run with: `cargo run --release --example multi_dataset`

use varbench::core::multiple_datasets::{demsar_wilcoxon, dror_all_datasets, DatasetMeasures};
use varbench::core::report::Table;
use varbench::pipeline::{CaseStudy, Scale, SeedAssignment};
use varbench::rng::Rng;
use varbench::stats::describe::mean;

fn main() {
    // Three tasks; on each, A = defaults, B = defaults with the first
    // hyperparameter degraded (a weak learning rate on the GLUE analogs, a
    // minimal hidden layer on the MHC analog — both out-of-range values
    // are clamped into the search space).
    let tasks = [
        CaseStudy::glue_rte_bert(Scale::Test),
        CaseStudy::glue_sst2_bert(Scale::Test),
        CaseStudy::mhc_mlp(Scale::Test),
    ];
    let k = 12;

    let mut per_dataset = Vec::new();
    let mut a_means = Vec::new();
    let mut b_means = Vec::new();
    for (t, cs) in tasks.iter().enumerate() {
        let a_params = cs.default_params().to_vec();
        let mut b_params = a_params.clone();
        b_params[0] = 0.004; // clamped per-space: weak lr / tiny hidden layer
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..k {
            let seeds = SeedAssignment::all_random(40 + t as u64, i as u64);
            a.push(cs.run_with_params(&a_params, &seeds));
            b.push(cs.run_with_params(&b_params, &seeds));
        }
        a_means.push(mean(&a));
        b_means.push(mean(&b));
        per_dataset.push(DatasetMeasures {
            name: cs.name().to_string(),
            a,
            b,
        });
    }

    let mut table = Table::new(vec![
        "dataset".into(),
        "mean A".into(),
        "mean B".into(),
        "decision (Bonferroni alpha)".into(),
    ]);
    let mut rng = Rng::seed_from_u64(99);
    let dror = dror_all_datasets(&per_dataset, 0.75, 0.05, 1000, &mut rng);
    for ((m, (name, decision)), (ma, mb)) in per_dataset
        .iter()
        .zip(&dror.per_dataset)
        .zip(a_means.iter().zip(&b_means))
    {
        let _ = m;
        table.add_row(vec![
            name.clone(),
            format!("{ma:.4}"),
            format!("{mb:.4}"),
            format!("{decision}"),
        ]);
    }
    println!("{table}");
    println!(
        "Dror et al. rule (corrected alpha = {:.4}): accept A over B on all datasets? {}",
        dror.corrected_alpha,
        if dror.accept { "YES" } else { "NO" }
    );

    // Demšar's test on the per-dataset mean scores: underpowered at 3
    // datasets, as the paper warns.
    let demsar = demsar_wilcoxon(&a_means, &b_means);
    println!(
        "\nDemsar/Wilcoxon across {} datasets: p = {:.3} (underpowered at this scale —\n\
         'such a small sample size leads to tests of very limited statistical power')",
        demsar.n_datasets, demsar.p_value
    );
}
