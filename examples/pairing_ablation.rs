//! Pairing ablation (paper Appendix C.2): why comparisons should share
//! seeds.
//!
//! When two algorithms are evaluated on the *same* data splits and seeds,
//! the shared fluctuations are correlated and cancel in the difference:
//! `Var(A − B) = Var(A) + Var(B) − 2 Cov(A, B)`. This example repeats a
//! small benchmark comparison many times and contrasts the *paired*
//! analysis (exploiting the correlation) with an *unpaired* analysis of
//! the same measurements.
//!
//! Run with: `cargo run --release --example pairing_ablation`

use varbench::core::report::{num, pct, Table};
use varbench::models::metrics::pearson;
use varbench::pipeline::{CaseStudy, Scale, SeedAssignment};
use varbench::stats::describe::{mean, std_dev};
use varbench::stats::tests::{parametric::t_test_paired, parametric::t_test_welch, Alternative};

fn main() {
    let cs = CaseStudy::glue_sst2_bert(Scale::Test);
    // A: default hyperparameters; B: a mildly lower learning rate. The
    // effect is small, so detection hinges on the noise each analysis sees.
    let a_params = cs.default_params().to_vec();
    let mut b_params = a_params.clone();
    b_params[0] = 0.010; // lower learning rate: a mildly weaker variant

    let k = 12; // paired runs per experiment
    let experiments = 12;

    let mut rhos = Vec::new();
    let mut diff_stds = Vec::new();
    let mut indep_stds = Vec::new();
    let mut paired_hits = 0;
    let mut unpaired_hits = 0;
    for e in 0..experiments {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..k {
            let seeds = SeedAssignment::all_random(1000 + e, i);
            a.push(cs.run_with_params(&a_params, &seeds));
            b.push(cs.run_with_params(&b_params, &seeds));
        }
        let diffs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        if std_dev(&diffs) > 0.0 && std_dev(&a) > 0.0 && std_dev(&b) > 0.0 {
            rhos.push(pearson(&a, &b));
            diff_stds.push(std_dev(&diffs));
            indep_stds.push((std_dev(&a).powi(2) + std_dev(&b).powi(2)).sqrt());
            if t_test_paired(&a, &b, Alternative::Greater).p_value < 0.05 {
                paired_hits += 1;
            }
            if t_test_welch(&a, &b, Alternative::Greater).p_value < 0.05 {
                unpaired_hits += 1;
            }
        }
    }

    let mut t = Table::new(vec!["quantity".into(), "mean over experiments".into()]);
    t.add_row(vec![
        "corr(A, B) from shared seeds".into(),
        num(mean(&rhos), 3),
    ]);
    t.add_row(vec!["std(A - B), paired".into(), num(mean(&diff_stds), 5)]);
    t.add_row(vec![
        "sqrt(Var A + Var B) (unpaired noise)".into(),
        num(mean(&indep_stds), 5),
    ]);
    t.add_row(vec![
        "paired t-test detection rate".into(),
        pct(paired_hits as f64 / experiments as f64),
    ]);
    t.add_row(vec![
        "unpaired t-test detection rate".into(),
        pct(unpaired_hits as f64 / experiments as f64),
    ]);
    println!("{t}");
    println!(
        "\nShared seeds make A and B positively correlated, so the paired\n\
         difference is less noisy than the unpaired analysis assumes —\n\
         the paired test detects the same small effect at least as often.\n\
         In doubt, pair (paper Appendix C.2)."
    );
}
