//! Sample-size planning: how many training runs does a trustworthy
//! comparison need?
//!
//! Uses Noether's formula (paper Appendix C.3) to plan the number of
//! paired runs for a target effect size γ, then *verifies the plan by
//! simulation*: at the planned sample size, the false-negative rate of the
//! `P(A > B)` test should be near the requested β.
//!
//! Run with: `cargo run --release --example sample_size_planning`

use varbench::core::compare::compare_paired;
use varbench::core::report::{num, pct, Table};
use varbench::core::sample_size::noether_sample_size;
use varbench::core::simulation::{simulate_measures, SimEstimator, SimulatedTask};
use varbench::rng::Rng;

fn main() {
    println!("Noether sample sizes (alpha = 0.05, beta = 0.05):\n");
    let mut t = Table::new(vec!["gamma".into(), "required N".into()]);
    for gamma in [0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9] {
        t.add_row(vec![
            num(gamma, 2),
            noether_sample_size(gamma, 0.05, 0.05).to_string(),
        ]);
    }
    println!("{t}");

    // Verify the γ = 0.75 plan by simulation: a true effect exactly at
    // γ should be detected with power ≈ 1 − β when N = 29.
    let gamma = 0.75;
    let n = noether_sample_size(gamma, 0.05, 0.05);
    let task = SimulatedTask::new(0.02, 0.0, 0.02);
    let gap = task.gap_for_probability(0.85); // comfortably meaningful effect
    let mut rng = Rng::seed_from_u64(1);
    let sims = 300;
    let mut detected = 0;
    for _ in 0..sims {
        let a = simulate_measures(&task, SimEstimator::Ideal, 0.5 + gap, n, &mut rng);
        let b = simulate_measures(&task, SimEstimator::Ideal, 0.5, n, &mut rng);
        if compare_paired(&a, &b, gamma, 0.05, 300, &mut rng).is_improvement() {
            detected += 1;
        }
    }
    println!(
        "simulated power at N = {n}, true P(A>B) = 0.85: {}",
        pct(detected as f64 / sims as f64)
    );
    println!("(plan target: >= 80% given the Noether approximation)");
}
