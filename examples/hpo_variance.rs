//! Hyperparameter-optimization variance: the ξ_H source the paper showed
//! the community was ignoring.
//!
//! Runs several *independent* hyperparameter optimizations of the same
//! pipeline on the same data — only the optimizer's seed differs — and
//! shows that each lands on different "best" hyperparameters with
//! different test performance. This is exactly the residual variance of
//! Fig. 1's HPO rows: "the three hyperparameter optimization methods
//! induce on average as much variance as the commonly studied weights
//! initialization".
//!
//! Run with: `cargo run --release --example hpo_variance`

use varbench::core::report::{num, Table};
use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment, VarianceSource};
use varbench::stats::describe::Summary;

fn main() {
    let cs = CaseStudy::mhc_mlp(Scale::Test);
    let budget = 10;
    let n_runs = 6;
    println!(
        "{} independent {} runs on {} (budget {} trials each)\n",
        n_runs,
        HpoAlgorithm::BayesOpt,
        cs.name(),
        budget
    );

    let base = SeedAssignment::all_fixed(7);
    let mut t = Table::new(vec![
        "HPO seed".into(),
        "selected hidden".into(),
        "selected L2".into(),
        "test AUC".into(),
    ]);
    let mut metrics = Vec::new();
    for run in 0..n_runs {
        let seeds = base.with_varied(VarianceSource::HyperOpt, run as u64 + 1);
        let result = cs.run_pipeline(&seeds, HpoAlgorithm::BayesOpt, budget);
        metrics.push(result.test_metric);
        t.add_row(vec![
            format!("{run}"),
            format!("{}", result.best_params[0] as usize),
            format!("{:.2e}", result.best_params[1]),
            num(result.test_metric, 4),
        ]);
    }
    println!("{t}");
    println!(
        "test-metric spread across HPO seeds: {}",
        Summary::from_slice(&metrics)
    );
    println!(
        "\nEvery row used identical data and identical training seeds; only\n\
         the tuner's own randomness differed. Benchmarks that tune once and\n\
         reuse lambda* inherit one arbitrary draw from this distribution."
    );
}
